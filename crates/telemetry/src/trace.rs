//! Chrome-trace/Perfetto JSON export and schema validation.
//!
//! The export follows the Trace Event Format's JSON object form:
//! a top-level `{"traceEvents": [...]}` whose entries are complete
//! (`"ph": "X"`) duration events with microsecond-convention `ts`/`dur`
//! fields — here both are in *cycles*, which Perfetto renders fine
//! (`"displayTimeUnit"` advertises the convention).  Packet lifetimes
//! become one process (`pid`) per source node with one track (`tid`)
//! per packet: an umbrella span from injection to delivery plus one
//! child span per switch hop.  MAC turns become a `pid` per medium
//! with a track per radio.
//!
//! [`validate_chrome_trace`] is the schema check CI runs against
//! `--trace` output: it parses the JSON and verifies every event
//! carries the required keys with the right shapes.

use serde::Value;

use crate::counters::{TraceBuffer, TurnRecord};

/// One complete ("X") trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Human-readable span name.
    pub name: String,
    /// Process id (grouping lane in the UI).
    pub pid: u64,
    /// Thread id (track within the process).
    pub tid: u64,
    /// Start timestamp, in cycles.
    pub ts: u64,
    /// Duration, in cycles.
    pub dur: u64,
}

impl TraceEvent {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::UInt(self.ts)),
            ("dur".into(), Value::UInt(self.dur)),
            ("pid".into(), Value::UInt(self.pid)),
            ("tid".into(), Value::UInt(self.tid)),
        ])
    }
}

/// A trace under assembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

/// Packet spans group under process ids offset by this, one per source
/// node; MAC turn spans use `pid` = medium index directly (media are
/// few, nodes are many, so the ranges stay disjoint).
const PACKET_PID_BASE: u64 = 1000;

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Builds the full trace from a drained [`TraceBuffer`]: per-hop
    /// spans and inject→deliver umbrellas for every completed packet,
    /// plus MAC turn intervals.
    pub fn from_buffer(buf: &TraceBuffer) -> Self {
        let mut t = ChromeTrace::new();
        t.push_packet_spans(buf);
        for turn in &buf.turns {
            t.push_turn(0, turn);
        }
        t
    }

    /// Events assembled so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Adds every completed packet's umbrella + per-hop spans.  Hops
    /// are matched to packets by id; a hop's span runs from its ST
    /// grant to the next waypoint (or delivery).
    pub fn push_packet_spans(&mut self, buf: &TraceBuffer) {
        for &(packet, src, dest, created, arrived) in &buf.packets {
            let pid = PACKET_PID_BASE + src;
            self.events.push(TraceEvent {
                name: format!("pkt{packet} {src}->{dest}"),
                pid,
                tid: packet,
                ts: created,
                dur: arrived.saturating_sub(created).max(1),
            });
            // Waypoints for this packet, in grant order (hops is
            // already cycle-ordered per packet because grants are).
            let mut cursor: Option<(u64, u64)> = None; // (node, since)
            for h in buf.hops.iter().filter(|h| h.packet == packet) {
                if let Some((node, since)) = cursor {
                    self.events.push(TraceEvent {
                        name: format!("hop @{node}"),
                        pid,
                        tid: packet,
                        ts: since,
                        dur: h.cycle.saturating_sub(since).max(1),
                    });
                }
                cursor = Some((h.node, h.cycle));
            }
            if let Some((node, since)) = cursor {
                self.events.push(TraceEvent {
                    name: format!("hop @{node}"),
                    pid,
                    tid: packet,
                    ts: since,
                    dur: arrived.saturating_sub(since).max(1),
                });
            }
        }
    }

    /// Adds one MAC turn interval under medium `medium`.
    pub fn push_turn(&mut self, medium: u64, turn: &TurnRecord) {
        self.events.push(TraceEvent {
            name: format!("turn radio{} ({} flits)", turn.radio, turn.flits),
            pid: medium,
            tid: turn.radio,
            ts: turn.start,
            dur: turn.end.saturating_sub(turn.start).max(1),
        });
    }

    /// Renders the trace as Chrome trace-event JSON.
    pub fn render(&self) -> String {
        let events: Vec<Value> = self.events.iter().map(TraceEvent::to_value).collect();
        let root = Value::Map(vec![
            ("traceEvents".into(), Value::Seq(events)),
            ("displayTimeUnit".into(), Value::Str("ns".into())),
            (
                "otherData".into(),
                Value::Map(vec![(
                    "timeUnit".into(),
                    Value::Str("cycles".into()),
                )]),
            ),
        ]);
        serde_json::to_string_pretty(&root).expect("trace values always render")
    }
}

/// Schema-validates Chrome trace-event JSON (the object form):
/// a top-level map with a `traceEvents` sequence whose every entry has
/// `name` (string), `ph` (string), `pid`/`tid` (integers) and — for
/// complete `"X"` events — numeric `ts` and `dur`.  Returns the event
/// count on success.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let root = serde_json::parse_value(json).map_err(|e| format!("not JSON: {e}"))?;
    let Some(events) = root.get("traceEvents") else {
        return Err("missing traceEvents".into());
    };
    let Value::Seq(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let want_uint = |ev: &Value, key: &str, i: usize| -> Result<u64, String> {
        match ev.get(key) {
            Some(Value::UInt(u)) => Ok(*u),
            Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
            Some(_) => Err(format!("event {i}: {key} is not a non-negative integer")),
            None => Err(format!("event {i}: missing {key}")),
        }
    };
    for (i, ev) in events.iter().enumerate() {
        if !matches!(ev, Value::Map(_)) {
            return Err(format!("event {i} is not an object"));
        }
        match ev.get("name") {
            Some(Value::Str(_)) => {}
            _ => return Err(format!("event {i}: missing string name")),
        }
        let ph = match ev.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing string ph")),
        };
        want_uint(ev, "pid", i)?;
        want_uint(ev, "tid", i)?;
        if ph == "X" {
            want_uint(ev, "ts", i)?;
            want_uint(ev, "dur", i)?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::HopRecord;

    fn sample_buffer() -> TraceBuffer {
        TraceBuffer {
            hops: vec![
                HopRecord { packet: 7, node: 0, cycle: 2 },
                HopRecord { packet: 7, node: 1, cycle: 5 },
                HopRecord { packet: 8, node: 3, cycle: 4 },
            ],
            packets: vec![(7, 0, 2, 0, 9), (8, 3, 1, 1, 12)],
            turns: vec![TurnRecord { radio: 2, start: 10, end: 40, flits: 64 }],
        }
    }

    #[test]
    fn export_validates_against_its_own_schema() {
        let trace = ChromeTrace::from_buffer(&sample_buffer());
        // 2 umbrellas + 3 hop spans + 1 turn.
        assert_eq!(trace.events().len(), 6);
        let json = trace.render();
        assert_eq!(validate_chrome_trace(&json), Ok(6));
    }

    #[test]
    fn hop_spans_chain_waypoints_to_delivery() {
        let trace = ChromeTrace::from_buffer(&sample_buffer());
        let hops: Vec<&TraceEvent> = trace
            .events()
            .iter()
            .filter(|e| e.tid == 7 && e.name.starts_with("hop"))
            .collect();
        assert_eq!(hops.len(), 2);
        assert_eq!((hops[0].ts, hops[0].dur), (2, 3), "waypoint to next waypoint");
        assert_eq!((hops[1].ts, hops[1].dur), (5, 4), "last waypoint to delivery");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph":"X"}]}"#).is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents": [{"name":"a","ph":"X","pid":0,"tid":0,"ts":1}]}"#
        )
        .is_err(), "X events need dur");
        assert_eq!(validate_chrome_trace(r#"{"traceEvents": []}"#), Ok(0));
        assert_eq!(
            validate_chrome_trace(
                r#"{"traceEvents": [{"name":"a","ph":"X","pid":0,"tid":1,"ts":2,"dur":3}]}"#
            ),
            Ok(1)
        );
    }

    #[test]
    fn zero_length_spans_render_with_unit_duration() {
        let mut t = ChromeTrace::new();
        t.push_turn(0, &TurnRecord { radio: 0, start: 5, end: 5, flits: 0 });
        assert_eq!(t.events()[0].dur, 1);
    }
}
