//! Per-chip structure: the core mesh, cluster partitioning and MAD-optimal
//! wireless interface placement.
//!
//! The paper (§III.A) divides each multicore chip into clusters of cores
//! that share one wireless interface (WI), and places each WI "at one of
//! the central switches of each cluster", following the minimum-average-
//! distance (MAD) deployment of its ref \[15\].  [`partition_clusters`]
//! reproduces that strategy: equal rectangular clusters, WI at the member
//! switch minimising the total Manhattan distance to the rest of its
//! cluster.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::geometry::Point;

/// The tile pitch used throughout the paper's floorplans: a 16-core chip is
/// 10 mm × 10 mm with a 4 × 4 mesh, i.e. 2.5 mm between adjacent switches.
pub const DEFAULT_TILE_PITCH_MM: f64 = 2.5;

/// Dimensions of one processing chip's core mesh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Distance between adjacent switches, in millimetres.
    pub tile_pitch_mm: f64,
}

impl ChipSpec {
    /// A chip with `cores` cores arranged into the most square mesh whose
    /// dimensions multiply to `cores` (rows ≥ columns: disintegrated
    /// chiplets stay *tall* so the east/west boundaries facing their
    /// neighbours keep the full row count — this is what lets the
    /// interposer's boundary link count grow with the number of chips,
    /// the effect §IV.C's diminishing gains hinge on), at the paper's
    /// 2.5 mm tile pitch.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroSized`] when `cores` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use wimnet_topology::ChipSpec;
    /// let chip = ChipSpec::with_cores(16)?;
    /// assert_eq!((chip.rows, chip.cols), (4, 4));
    /// let chip = ChipSpec::with_cores(8)?;
    /// assert_eq!((chip.rows, chip.cols), (4, 2));
    /// # Ok::<(), wimnet_topology::TopologyError>(())
    /// ```
    pub fn with_cores(cores: usize) -> Result<Self, TopologyError> {
        if cores == 0 {
            return Err(TopologyError::ZeroSized { what: "cores per chip" });
        }
        let mut cols = (cores as f64).sqrt() as usize;
        while cols > 1 && !cores.is_multiple_of(cols) {
            cols -= 1;
        }
        let cols = cols.max(1);
        Ok(ChipSpec {
            rows: cores / cols,
            cols,
            tile_pitch_mm: DEFAULT_TILE_PITCH_MM,
        })
    }

    /// Number of cores (= switches) on the chip.
    pub fn cores(&self) -> usize {
        self.rows * self.cols
    }

    /// Die width in millimetres.
    pub fn die_width_mm(&self) -> f64 {
        self.cols as f64 * self.tile_pitch_mm
    }

    /// Die height in millimetres.
    pub fn die_height_mm(&self) -> f64 {
        self.rows as f64 * self.tile_pitch_mm
    }

    /// Position of the switch at mesh coordinate `(x, y)` relative to the
    /// chip's bottom-left corner (switches sit at tile centres).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the mesh.
    pub fn switch_offset(&self, x: usize, y: usize) -> Point {
        assert!(x < self.cols && y < self.rows, "switch ({x},{y}) outside mesh");
        Point::new(
            (x as f64 + 0.5) * self.tile_pitch_mm,
            (y as f64 + 0.5) * self.tile_pitch_mm,
        )
    }

    /// The switch on the centre of the `side` boundary, used as the
    /// attachment point for substrate serial I/O and wide memory I/O.
    pub fn boundary_center(&self, side: Side) -> (usize, usize) {
        match side {
            Side::West => (0, self.rows / 2),
            Side::East => (self.cols - 1, self.rows / 2),
            Side::South => (self.cols / 2, 0),
            Side::North => (self.cols / 2, self.rows - 1),
        }
    }

    /// All switches on the `side` boundary, in increasing coordinate
    /// order; these are the interposer mesh-extension attachment points.
    pub fn boundary_switches(&self, side: Side) -> Vec<(usize, usize)> {
        match side {
            Side::West => (0..self.rows).map(|y| (0, y)).collect(),
            Side::East => (0..self.rows).map(|y| (self.cols - 1, y)).collect(),
            Side::South => (0..self.cols).map(|x| (x, 0)).collect(),
            Side::North => (0..self.cols).map(|x| (x, self.rows - 1)).collect(),
        }
    }
}

/// One side of a rectangular die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Negative-x boundary.
    West,
    /// Positive-x boundary.
    East,
    /// Negative-y boundary.
    South,
    /// Positive-y boundary.
    North,
}

/// A cluster of cores sharing one wireless interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster index within the chip.
    pub id: usize,
    /// Mesh coordinates of the member switches.
    pub members: Vec<(usize, usize)>,
    /// Mesh coordinate of the WI-equipped switch (MAD-optimal member).
    pub wi: (usize, usize),
}

/// Where a wireless interface ended up on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WiPlacement {
    /// Cluster the WI serves.
    pub cluster: usize,
    /// Mesh column of the WI switch.
    pub x: usize,
    /// Mesh row of the WI switch.
    pub y: usize,
}

/// Partitions a chip's mesh into `clusters` equal rectangular clusters and
/// places one WI per cluster at the MAD-optimal switch.
///
/// The cluster grid `(kr, kc)` is chosen among factorisations of
/// `clusters` that evenly divide the mesh, minimising the aspect mismatch
/// of the resulting sub-rectangles (ties broken toward fewer cluster rows,
/// deterministically).
///
/// # Errors
///
/// * [`TopologyError::ZeroSized`] when `clusters` is zero.
/// * [`TopologyError::ClusterPartition`] when no factorisation of
///   `clusters` divides the mesh evenly.
///
/// # Example
///
/// ```
/// use wimnet_topology::{chip::partition_clusters, ChipSpec};
///
/// let chip = ChipSpec::with_cores(64)?; // 8x8 mesh
/// let clusters = partition_clusters(&chip, 4)?;
/// assert_eq!(clusters.len(), 4);
/// assert!(clusters.iter().all(|c| c.members.len() == 16));
/// # Ok::<(), wimnet_topology::TopologyError>(())
/// ```
pub fn partition_clusters(
    spec: &ChipSpec,
    clusters: usize,
) -> Result<Vec<Cluster>, TopologyError> {
    if clusters == 0 {
        return Err(TopologyError::ZeroSized { what: "clusters per chip" });
    }
    let err = TopologyError::ClusterPartition {
        rows: spec.rows,
        cols: spec.cols,
        clusters,
    };
    if !spec.cores().is_multiple_of(clusters) {
        return Err(err);
    }

    // Pick the factorisation (kr, kc) of `clusters` that divides the mesh
    // and gives the squarest sub-rectangles.
    let mut best: Option<(usize, usize, f64)> = None;
    for kr in 1..=clusters {
        if !clusters.is_multiple_of(kr) {
            continue;
        }
        let kc = clusters / kr;
        if !spec.rows.is_multiple_of(kr) || !spec.cols.is_multiple_of(kc) {
            continue;
        }
        let sub_r = (spec.rows / kr) as f64;
        let sub_c = (spec.cols / kc) as f64;
        let mismatch = (sub_r - sub_c).abs();
        let better = match best {
            None => true,
            Some((_, _, m)) => mismatch < m - 1e-12,
        };
        if better {
            best = Some((kr, kc, mismatch));
        }
    }
    let (kr, kc, _) = best.ok_or(err)?;
    let sub_rows = spec.rows / kr;
    let sub_cols = spec.cols / kc;

    let mut out = Vec::with_capacity(clusters);
    for cr in 0..kr {
        for cc in 0..kc {
            let id = cr * kc + cc;
            let mut members = Vec::with_capacity(sub_rows * sub_cols);
            for y in (cr * sub_rows)..((cr + 1) * sub_rows) {
                for x in (cc * sub_cols)..((cc + 1) * sub_cols) {
                    members.push((x, y));
                }
            }
            let wi = mad_optimal(&members);
            out.push(Cluster { id, members, wi });
        }
    }
    Ok(out)
}

/// The member switch minimising the summed Manhattan distance to all other
/// members (the minimum-average-distance criterion of the paper's ref
/// \[15\]).  Ties are broken toward the smallest `(y, x)` for determinism.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn mad_optimal(members: &[(usize, usize)]) -> (usize, usize) {
    assert!(!members.is_empty(), "cluster must have members");
    let mut best = members[0];
    let mut best_sum = usize::MAX;
    for &(x, y) in members {
        let sum: usize = members
            .iter()
            .map(|&(mx, my)| x.abs_diff(mx) + y.abs_diff(my))
            .sum();
        let better = sum < best_sum
            || (sum == best_sum && (y, x) < (best.1, best.0));
        if better {
            best = (x, y);
            best_sum = sum;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cores_prefers_square_meshes() {
        assert_eq!(ChipSpec::with_cores(16).unwrap().cores(), 16);
        let c = ChipSpec::with_cores(16).unwrap();
        assert_eq!((c.rows, c.cols), (4, 4));
        let c = ChipSpec::with_cores(64).unwrap();
        assert_eq!((c.rows, c.cols), (8, 8));
        let c = ChipSpec::with_cores(8).unwrap();
        assert_eq!((c.rows, c.cols), (4, 2));
        let c = ChipSpec::with_cores(12).unwrap();
        assert_eq!((c.rows, c.cols), (4, 3));
        let c = ChipSpec::with_cores(7).unwrap();
        assert_eq!((c.rows, c.cols), (7, 1));
    }

    #[test]
    fn zero_cores_is_an_error() {
        assert!(matches!(
            ChipSpec::with_cores(0),
            Err(TopologyError::ZeroSized { .. })
        ));
    }

    #[test]
    fn paper_16_core_chip_is_10mm_square() {
        let c = ChipSpec::with_cores(16).unwrap();
        assert!((c.die_width_mm() - 10.0).abs() < 1e-12);
        assert!((c.die_height_mm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn switch_offsets_sit_at_tile_centres() {
        let c = ChipSpec::with_cores(16).unwrap();
        let p = c.switch_offset(0, 0);
        assert!((p.x - 1.25).abs() < 1e-12 && (p.y - 1.25).abs() < 1e-12);
        let p = c.switch_offset(3, 3);
        assert!((p.x - 8.75).abs() < 1e-12 && (p.y - 8.75).abs() < 1e-12);
    }

    #[test]
    fn boundary_helpers() {
        let c = ChipSpec::with_cores(16).unwrap();
        assert_eq!(c.boundary_center(Side::West), (0, 2));
        assert_eq!(c.boundary_center(Side::East), (3, 2));
        assert_eq!(c.boundary_switches(Side::East).len(), 4);
        assert!(c
            .boundary_switches(Side::West)
            .iter()
            .all(|&(x, _)| x == 0));
        assert!(c
            .boundary_switches(Side::North)
            .iter()
            .all(|&(_, y)| y == 3));
    }

    #[test]
    fn partition_into_one_cluster_covers_chip() {
        let c = ChipSpec::with_cores(16).unwrap();
        let cl = partition_clusters(&c, 1).unwrap();
        assert_eq!(cl.len(), 1);
        assert_eq!(cl[0].members.len(), 16);
        // MAD centre of a 4x4 mesh: one of the four central switches,
        // deterministic tie-break picks (1, 1).
        assert_eq!(cl[0].wi, (1, 1));
    }

    #[test]
    fn partition_64_cores_into_4_quadrants() {
        let c = ChipSpec::with_cores(64).unwrap();
        let cl = partition_clusters(&c, 4).unwrap();
        assert_eq!(cl.len(), 4);
        for cluster in &cl {
            assert_eq!(cluster.members.len(), 16);
            // Each WI must lie inside its own cluster.
            assert!(cluster.members.contains(&cluster.wi));
        }
        // Quadrants must not overlap.
        let mut all: Vec<_> = cl.iter().flat_map(|c| c.members.clone()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn partition_rejects_impossible_splits() {
        let c = ChipSpec::with_cores(16).unwrap();
        assert!(matches!(
            partition_clusters(&c, 3),
            Err(TopologyError::ClusterPartition { .. })
        ));
        assert!(matches!(
            partition_clusters(&c, 0),
            Err(TopologyError::ZeroSized { .. })
        ));
    }

    #[test]
    fn partition_rectangular_chip() {
        // 2x4 chip (8 cores), 2 clusters -> two 2x2 sub-rectangles.
        let c = ChipSpec::with_cores(8).unwrap();
        let cl = partition_clusters(&c, 2).unwrap();
        assert_eq!(cl.len(), 2);
        assert!(cl.iter().all(|c| c.members.len() == 4));
    }

    #[test]
    fn mad_optimal_is_a_geometric_median_member() {
        // On a 1-D path of 5 switches the median is the middle one.
        let members: Vec<_> = (0..5).map(|x| (x, 0)).collect();
        assert_eq!(mad_optimal(&members), (2, 0));
        // Singleton cluster.
        assert_eq!(mad_optimal(&[(3, 7)]), (3, 7));
    }

    #[test]
    #[should_panic]
    fn switch_offset_out_of_range_panics() {
        let c = ChipSpec::with_cores(16).unwrap();
        c.switch_offset(4, 0);
    }
}
