//! Error type for topology construction.

use std::error::Error;
use std::fmt;

/// Errors raised while validating or building a multichip topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A dimension or count was zero where a positive value is required.
    ZeroSized {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// The requested chip count cannot be arranged into a package grid.
    UnsupportedChipCount {
        /// The requested number of chips.
        chips: usize,
    },
    /// Memory stacks must be distributed evenly on both sides of the chip
    /// array (paper §IV.A), which requires an even, chip-row-compatible
    /// count.
    UnsupportedMemoryCount {
        /// The requested number of stacks.
        stacks: usize,
        /// Rows in the chip grid, which each package side must cover.
        chip_rows: usize,
    },
    /// The per-chip core mesh cannot be partitioned into the requested
    /// number of equal rectangular clusters.
    ClusterPartition {
        /// Mesh rows on the chip.
        rows: usize,
        /// Mesh columns on the chip.
        cols: usize,
        /// Requested cluster count.
        clusters: usize,
    },
    /// A wireless parameter (such as cores-per-WI) is invalid for the
    /// requested system.
    InvalidWirelessDensity {
        /// Cores serviced by a single WI.
        cores_per_wi: usize,
        /// Cores present on each chip.
        cores_per_chip: usize,
    },
    /// An edge refers to a node outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroSized { what } => {
                write!(f, "{what} must be positive")
            }
            TopologyError::UnsupportedChipCount { chips } => {
                write!(f, "cannot arrange {chips} chips into a package grid")
            }
            TopologyError::UnsupportedMemoryCount { stacks, chip_rows } => write!(
                f,
                "cannot split {stacks} memory stacks over two package sides \
                 of {chip_rows} chip rows"
            ),
            TopologyError::ClusterPartition { rows, cols, clusters } => write!(
                f,
                "cannot partition a {rows}x{cols} mesh into {clusters} equal \
                 rectangular clusters"
            ),
            TopologyError::InvalidWirelessDensity { cores_per_wi, cores_per_chip } => write!(
                f,
                "invalid wireless density: {cores_per_wi} cores per WI on a \
                 chip with {cores_per_chip} cores"
            ),
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node index {node} out of range for {nodes} nodes")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TopologyError::UnsupportedChipCount { chips: 7 };
        let msg = format!("{e}");
        assert!(msg.contains('7'));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let e = TopologyError::ClusterPartition { rows: 4, cols: 4, clusters: 3 };
        assert!(format!("{e}").contains("4x4"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(TopologyError::ZeroSized { what: "rows" });
    }
}
