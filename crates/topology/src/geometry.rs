//! Package geometry: positions and distances in millimetres.
//!
//! The paper models 10 mm × 10 mm processing dies on a 2.5D package and
//! derives wireline link energies from extracted lengths, while the mm-wave
//! links must span "a few millimetres to several centimetres".  This module
//! supplies those lengths from an explicit floorplan.

use serde::{Deserialize, Serialize};

/// A point on the package, in millimetres from the package's bottom-left
/// corner.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in millimetres.
    pub x: f64,
    /// Vertical coordinate in millimetres.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` millimetres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in millimetres.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Manhattan distance to `other`, in millimetres. Wireline routes
    /// follow rectilinear channels, so wire lengths use this metric.
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// Physical floorplan parameters shared by all architectures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageGeometry {
    /// Gap between adjacent chips (and between chips and memory stacks).
    pub chip_gap_mm: f64,
    /// Footprint width of one memory stack.
    pub stack_width_mm: f64,
    /// Footprint height of one memory stack.
    pub stack_height_mm: f64,
}

impl PackageGeometry {
    /// The floorplan used throughout the paper's evaluation: 2 mm
    /// inter-component gap, HBM-like 7 mm × 10 mm stack footprints.
    pub fn paper() -> Self {
        PackageGeometry {
            chip_gap_mm: 2.0,
            stack_width_mm: 7.0,
            stack_height_mm: 10.0,
        }
    }
}

impl Default for PackageGeometry {
    fn default() -> Self {
        PackageGeometry::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.manhattan(b) - 7.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        assert!((a.manhattan(b) - b.manhattan(a)).abs() < 1e-12);
    }

    #[test]
    fn paper_geometry_defaults() {
        let g = PackageGeometry::default();
        assert_eq!(g, PackageGeometry::paper());
        assert!(g.chip_gap_mm > 0.0);
        assert!(g.stack_width_mm > 0.0);
    }
}
