//! The interconnection graph: switches (nodes) and physical channels
//! (edges).
//!
//! Edges are *undirected* at this level; the cycle-accurate engine
//! instantiates two simplex channels per edge.  Node and edge indices are
//! assigned densely and deterministically, which the rest of the stack
//! relies on for reproducible simulations.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::geometry::Point;

/// Identifier of a switch in the interconnection graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected edge in the interconnection graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What a switch is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A NoC switch attached to one processing core.
    Core {
        /// Index of the chip this switch belongs to.
        chip: usize,
        /// Mesh column within the chip.
        x: usize,
        /// Mesh row within the chip.
        y: usize,
    },
    /// The switch on a memory stack's base logic die.
    MemoryLogicDie {
        /// Index of the memory stack.
        stack: usize,
    },
}

impl NodeKind {
    /// `true` for core switches.
    pub fn is_core(self) -> bool {
        matches!(self, NodeKind::Core { .. })
    }

    /// `true` for memory logic die switches.
    pub fn is_memory(self) -> bool {
        matches!(self, NodeKind::MemoryLogicDie { .. })
    }
}

/// The physical technology realising an edge.
///
/// The NoC engine maps each kind to a bandwidth, a latency and an energy
/// category; the routing layer maps it to a path weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Single-cycle on-chip mesh link.
    Mesh,
    /// Mesh-extension link through interposer metal layers (paper ref \[2\]).
    Interposer,
    /// High-speed serial chip-to-chip I/O on an organic substrate
    /// (15 Gbps, paper ref \[8\]).
    SerialIo,
    /// 128-bit wide memory I/O between a stack and its neighbouring chip
    /// (128 Gbps, paper ref \[19\]).
    WideIo,
    /// Single-hop mm-wave wireless link between two wireless interfaces.
    /// All wireless edges share one physical 16 Gbps channel.
    Wireless,
}

impl EdgeKind {
    /// All edge kinds.
    pub const ALL: [EdgeKind; 5] = [
        EdgeKind::Mesh,
        EdgeKind::Interposer,
        EdgeKind::SerialIo,
        EdgeKind::WideIo,
        EdgeKind::Wireless,
    ];

    /// `true` if this edge is a wire (anything but wireless).
    pub fn is_wired(self) -> bool {
        !matches!(self, EdgeKind::Wireless)
    }

    /// Default routing weight: the expected per-flit cost of the hop in
    /// cycles — router pipeline depth (3, paper ref \[18\]) plus flit
    /// serialisation time at the link's bandwidth relative to the 2.5 GHz
    /// 32-bit flit clock.
    ///
    /// * mesh / interposer: 1 flit/cycle ⇒ 3 + 1
    /// * serial I/O: 15 Gbps ⇒ 80/15 ≈ 5.33 cycles/flit ⇒ 3 + 5.33
    /// * wide I/O: 128 Gbps ⇒ 0.625 cycles/flit ⇒ 3 + 1 (floor of 1)
    /// * wireless: 16 Gbps ⇒ 5 cycles/flit ⇒ 3 + 5
    pub fn routing_weight(self) -> f64 {
        match self {
            EdgeKind::Mesh => 4.0,
            EdgeKind::Interposer => 4.0,
            EdgeKind::SerialIo => 3.0 + 80.0 / 15.0,
            EdgeKind::WideIo => 4.0,
            EdgeKind::Wireless => 8.0,
        }
    }
}

/// An undirected physical channel between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical technology of the channel.
    pub kind: EdgeKind,
    /// Physical length in millimetres (antenna separation for wireless).
    pub length_mm: f64,
}

impl Edge {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not an endpoint of edge {self:?}")
        }
    }
}

/// A switch together with its attachment and position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// What the switch is attached to.
    pub kind: NodeKind,
    /// Position on the package in millimetres.
    pub position: Point,
}

/// The interconnection graph of a multichip system.
///
/// # Example
///
/// ```
/// use wimnet_topology::{EdgeKind, Graph, Node, NodeKind, Point};
///
/// let mut g = Graph::new();
/// let a = g.add_node(Node {
///     kind: NodeKind::Core { chip: 0, x: 0, y: 0 },
///     position: Point::new(0.0, 0.0),
/// });
/// let b = g.add_node(Node {
///     kind: NodeKind::Core { chip: 0, x: 1, y: 0 },
///     position: Point::new(2.5, 0.0),
/// });
/// g.add_edge(a, b, EdgeKind::Mesh)?;
/// assert!(g.is_connected());
/// # Ok::<(), wimnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// adjacency[n] = (neighbour, edge) pairs in insertion order.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge; the length is the Manhattan distance
    /// between the endpoints for wired kinds and the Euclidean distance
    /// for wireless (line-of-sight radio propagation).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if either endpoint does
    /// not exist.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: EdgeKind,
    ) -> Result<EdgeId, TopologyError> {
        let pa = self.node(a).ok_or(TopologyError::NodeOutOfRange {
            node: a.index(),
            nodes: self.nodes.len(),
        })?;
        let pb = self.node(b).ok_or(TopologyError::NodeOutOfRange {
            node: b.index(),
            nodes: self.nodes.len(),
        })?;
        let length_mm = if kind.is_wired() {
            pa.position.manhattan(pb.position)
        } else {
            pa.position.distance(pb.position)
        };
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { a, b, kind, length_mm });
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with id `id`, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// The edge with id `id`, if it exists.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index())
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// `(neighbour, edge)` pairs of `node` in deterministic insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Edges of `kind`.
    pub fn edges_of_kind(&self, kind: EdgeKind) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.kind == kind)
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(m, _) in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Minimum hop count from `from` to every node (BFS, `usize::MAX` when
    /// unreachable).  Used as a test oracle for the routing crate.
    pub fn bfs_hops(&self, from: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            for &(m, _) in self.neighbors(n) {
                if dist[m.index()] == usize::MAX {
                    dist[m.index()] = dist[n.index()] + 1;
                    queue.push_back(m);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(chip: usize, x: usize, y: usize) -> Node {
        Node {
            kind: NodeKind::Core { chip, x, y },
            position: Point::new(x as f64, y as f64),
        }
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node(core(0, 0, 0));
        let b = g.add_node(core(0, 1, 0));
        let e = g.add_edge(a, b, EdgeKind::Mesh).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.neighbors(a), &[(b, e)]);
        assert_eq!(g.edge(e).unwrap().other(a), b);
        assert_eq!(g.edge(e).unwrap().other(b), a);
    }

    #[test]
    fn edge_to_missing_node_errors() {
        let mut g = Graph::new();
        let a = g.add_node(core(0, 0, 0));
        let err = g.add_edge(a, NodeId(5), EdgeKind::Mesh).unwrap_err();
        assert!(matches!(err, TopologyError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn wired_edges_use_manhattan_wireless_uses_euclidean() {
        let mut g = Graph::new();
        let a = g.add_node(Node {
            kind: NodeKind::Core { chip: 0, x: 0, y: 0 },
            position: Point::new(0.0, 0.0),
        });
        let b = g.add_node(Node {
            kind: NodeKind::MemoryLogicDie { stack: 0 },
            position: Point::new(3.0, 4.0),
        });
        let wired = g.add_edge(a, b, EdgeKind::WideIo).unwrap();
        let radio = g.add_edge(a, b, EdgeKind::Wireless).unwrap();
        assert!((g.edge(wired).unwrap().length_mm - 7.0).abs() < 1e-12);
        assert!((g.edge(radio).unwrap().length_mm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let mut g = Graph::new();
        assert!(g.is_connected(), "empty graph is trivially connected");
        let a = g.add_node(core(0, 0, 0));
        let b = g.add_node(core(0, 1, 0));
        let c = g.add_node(core(0, 2, 0));
        g.add_edge(a, b, EdgeKind::Mesh).unwrap();
        assert!(!g.is_connected());
        g.add_edge(b, c, EdgeKind::Mesh).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn bfs_hops_on_a_path() {
        let mut g = Graph::new();
        let n: Vec<_> = (0..4).map(|i| g.add_node(core(0, i, 0))).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], EdgeKind::Mesh).unwrap();
        }
        let d = g.bfs_hops(n[0]);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edges_of_kind_filters() {
        let mut g = Graph::new();
        let a = g.add_node(core(0, 0, 0));
        let b = g.add_node(core(1, 0, 0));
        g.add_edge(a, b, EdgeKind::SerialIo).unwrap();
        g.add_edge(a, b, EdgeKind::Wireless).unwrap();
        assert_eq!(g.edges_of_kind(EdgeKind::SerialIo).count(), 1);
        assert_eq!(g.edges_of_kind(EdgeKind::Wireless).count(), 1);
        assert_eq!(g.edges_of_kind(EdgeKind::Mesh).count(), 0);
    }

    #[test]
    fn routing_weights_order_matches_link_speeds() {
        // Faster links cost less; wireless and serial are the slow hops.
        assert!(EdgeKind::Mesh.routing_weight() <= EdgeKind::Wireless.routing_weight());
        assert!(EdgeKind::WideIo.routing_weight() <= EdgeKind::SerialIo.routing_weight());
        assert!(EdgeKind::SerialIo.routing_weight() > 8.0);
        for kind in EdgeKind::ALL {
            assert!(kind.routing_weight() > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        let e = Edge {
            a: NodeId(0),
            b: NodeId(1),
            kind: EdgeKind::Mesh,
            length_mm: 1.0,
        };
        e.other(NodeId(7));
    }
}
