//! Multichip system topology for the `wimnet` simulator.
//!
//! This crate describes *structure and geometry only*: which switches exist,
//! how they are wired (mesh links, interposer links, serial chip-to-chip
//! I/O, wide memory I/O, wireless single-hop links), where every component
//! sits on the package in millimetres, and where the wireless interfaces
//! (WIs) are deployed.  Timing, energy and protocol behaviour are layered on
//! top by the `wimnet-routing`, `wimnet-noc` and `wimnet-wireless` crates.
//!
//! The central entry point is [`MultichipLayout::build`], which realises the
//! paper's `XCYM` naming scheme — `X` processing chips and `Y` in-package
//! memory stacks — for any of the three compared architectures
//! ([`Architecture::Substrate`], [`Architecture::Interposer`],
//! [`Architecture::Wireless`]).
//!
//! # Example
//!
//! ```
//! use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
//!
//! // The paper's 4C4M wireless system: four 16-core chips + four stacks.
//! let config = MultichipConfig::xcym(4, 4, Architecture::Wireless);
//! let layout = MultichipLayout::build(&config)?;
//! assert_eq!(layout.core_nodes().len(), 64);
//! assert_eq!(layout.memory_nodes().len(), 4);
//! // One WI per 16-core chip plus one per memory stack.
//! assert_eq!(layout.wireless_interfaces().len(), 8);
//! # Ok::<(), wimnet_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod multichip;
pub mod render;

pub use chip::{ChipSpec, Cluster, WiPlacement};
pub use error::TopologyError;
pub use geometry::{PackageGeometry, Point};
pub use graph::{Edge, EdgeId, EdgeKind, Graph, Node, NodeId, NodeKind};
pub use render::ascii_map;
pub use multichip::{
    Architecture, MemorySpec, MultichipConfig, MultichipLayout, WiId, WirelessInterface,
};
