//! XCYM multichip package layouts for the three compared architectures.
//!
//! The paper's naming convention: `XCYM` is a system with `X` processing
//! chips and `Y` in-package memory stacks, the stacks mounted on both
//! sides of the chip array (§IV.A).  Three interconnection architectures
//! are compared:
//!
//! * **Substrate** — a single high-speed serial I/O between each pair of
//!   adjacent chips (at the facing boundary-centre switches, to avoid
//!   crosstalk between parallel high-speed lines) and one 128-bit wide I/O
//!   between each stack and its neighbouring chip.
//! * **Interposer** — the per-chip meshes are extended across chip
//!   boundaries through interposer metal layers (every facing boundary
//!   switch pair is linked, after the paper's ref \[2\]); stacks join the
//!   extended mesh through their logic-die switch.
//! * **Wireless** — no inter-chip wires; WIs deployed per core cluster
//!   (MAD-optimal placement) and one per stack logic die, forming
//!   single-hop links over the shared 60 GHz channel.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::chip::{partition_clusters, ChipSpec, Cluster, Side};
use crate::error::TopologyError;
use crate::geometry::{PackageGeometry, Point};
use crate::graph::{EdgeKind, Graph, Node, NodeId, NodeKind};

/// The inter-chip interconnection technology of a multichip system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Organic substrate with serial chip-to-chip I/O and wide memory I/O.
    Substrate,
    /// Silicon interposer extending the mesh across chips (paper ref \[2\]).
    Interposer,
    /// The proposed wireless interconnection framework.
    Wireless,
}

impl Architecture {
    /// All architectures, in the paper's comparison order.
    pub const ALL: [Architecture; 3] = [
        Architecture::Substrate,
        Architecture::Interposer,
        Architecture::Wireless,
    ];

    /// The label used in the paper's figures, e.g. `"Wireless"`.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Substrate => "Substrate",
            Architecture::Interposer => "Interposer",
            Architecture::Wireless => "Wireless",
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a wireless interface; also its position in the MAC
/// transmission sequence ("the WIs are numbered in a sequence", §III.D).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WiId(pub usize);

impl WiId {
    /// The dense index of this WI.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for WiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wi{}", self.0)
    }
}

/// What hosts a wireless interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WiHost {
    /// A cluster-central switch on a processing chip.
    Chip {
        /// Chip index.
        chip: usize,
        /// Cluster index within the chip.
        cluster: usize,
    },
    /// A memory stack's base logic die.
    Memory {
        /// Stack index.
        stack: usize,
    },
}

/// A deployed wireless interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirelessInterface {
    /// MAC sequence number.
    pub id: WiId,
    /// The switch carrying the radio port.
    pub node: NodeId,
    /// Where the WI is.
    pub host: WiHost,
}

/// Stacked-DRAM parameters (structure only; timing lives in
/// `wimnet-memory`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// DRAM layers above the base logic die (paper: 4).
    pub layers: u32,
    /// Independent channels per stack (paper: 4).
    pub channels: u32,
}

impl MemorySpec {
    /// The paper's memory stack: 4 DRAM layers, 4 channels.
    pub fn paper() -> Self {
        MemorySpec { layers: 4, channels: 4 }
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        MemorySpec::paper()
    }
}

/// Full configuration of a multichip system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultichipConfig {
    /// Number of processing chips (`X` in `XCYM`).
    pub num_chips: usize,
    /// Number of memory stacks (`Y` in `XCYM`); must be even so the
    /// stacks can sit on both sides of the chip array.
    pub num_stacks: usize,
    /// Cores on each chip.
    pub cores_per_chip: usize,
    /// Inter-chip interconnection technology.
    pub architecture: Architecture,
    /// Wireless deployment density: cores served by one WI.  Clamped so
    /// every chip keeps at least one WI (the paper uses 1 WI / 16 cores,
    /// falling back to 1 WI / chip for the 8-core chips of 8C4M).
    pub cores_per_wi: usize,
    /// Interposer links per adjacent chip pair ("point-to-point
    /// interconnects between the adjacent processing chips", §IV.A):
    /// `None` extends the full boundary (one link per facing switch
    /// pair), `Some(k)` places `k` evenly spaced links.
    pub interposer_links_per_boundary: Option<usize>,
    /// Package floorplan parameters.
    pub geometry: PackageGeometry,
    /// Memory stack structure.
    pub memory: MemorySpec,
}

impl MultichipConfig {
    /// The paper's `XCYM` systems: 64 total cores split over `chips`
    /// chips, `stacks` stacks, 1 WI per 16 cores (at least one per chip).
    ///
    /// # Example
    ///
    /// ```
    /// use wimnet_topology::{Architecture, MultichipConfig};
    /// let c = MultichipConfig::xcym(8, 4, Architecture::Wireless);
    /// assert_eq!(c.cores_per_chip, 8);
    /// assert_eq!(c.cores_per_wi, 8); // 1 WI per chip in the 8-chip system
    /// ```
    pub fn xcym(chips: usize, stacks: usize, architecture: Architecture) -> Self {
        let cores_per_chip = 64usize.checked_div(chips).unwrap_or(0);
        MultichipConfig {
            num_chips: chips,
            num_stacks: stacks,
            cores_per_chip,
            architecture,
            cores_per_wi: 16.min(cores_per_chip.max(1)),
            interposer_links_per_boundary: None,
            geometry: PackageGeometry::paper(),
            memory: MemorySpec::paper(),
        }
    }

    /// Total cores in the system.
    pub fn total_cores(&self) -> usize {
        self.num_chips * self.cores_per_chip
    }

    /// The paper's architecture label, e.g. `"4C4M (Wireless)"`.
    pub fn label(&self) -> String {
        format!(
            "{}C{}M ({})",
            self.num_chips,
            self.num_stacks,
            self.architecture.label()
        )
    }
}

/// A fully realised multichip topology.
///
/// Construction is deterministic: node ids are assigned chip-by-chip in
/// row-major mesh order, then stack-by-stack (left side top-down, then
/// right side top-down); WIs are numbered chips-first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultichipLayout {
    config: MultichipConfig,
    chip_spec: ChipSpec,
    chip_grid: (usize, usize),
    graph: Graph,
    cores: Vec<NodeId>,
    memories: Vec<NodeId>,
    wis: Vec<WirelessInterface>,
    wi_by_node: BTreeMap<NodeId, WiId>,
    clusters: Vec<Vec<Cluster>>,
    stack_adjacent_chip: Vec<usize>,
}

/// Splits `n` into the most square `(rows, cols)` grid with `cols >= rows`.
fn near_square_grid(n: usize) -> (usize, usize) {
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    let rows = rows.max(1);
    (rows, n / rows)
}

impl MultichipLayout {
    /// Builds the interconnection topology for `config`.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::ZeroSized`] for zero chips, cores or stacks-gap
    ///   parameters.
    /// * [`TopologyError::UnsupportedMemoryCount`] when the stacks cannot
    ///   be split over the two package sides.
    /// * [`TopologyError::ClusterPartition`] /
    ///   [`TopologyError::InvalidWirelessDensity`] for impossible WI
    ///   deployments (wireless architecture only).
    pub fn build(config: &MultichipConfig) -> Result<Self, TopologyError> {
        if config.num_chips == 0 {
            return Err(TopologyError::ZeroSized { what: "number of chips" });
        }
        if config.cores_per_chip == 0 {
            return Err(TopologyError::ZeroSized { what: "cores per chip" });
        }
        if config.num_stacks == 0 {
            return Err(TopologyError::ZeroSized { what: "number of memory stacks" });
        }
        let chip_grid = near_square_grid(config.num_chips);
        if !config.num_stacks.is_multiple_of(2) {
            return Err(TopologyError::UnsupportedMemoryCount {
                stacks: config.num_stacks,
                chip_rows: chip_grid.0,
            });
        }

        let chip_spec = ChipSpec::with_cores(config.cores_per_chip)?;
        let mut layout = MultichipLayout {
            config: config.clone(),
            chip_spec,
            chip_grid,
            graph: Graph::new(),
            cores: Vec::new(),
            memories: Vec::new(),
            wis: Vec::new(),
            wi_by_node: BTreeMap::new(),
            clusters: Vec::new(),
            stack_adjacent_chip: Vec::new(),
        };

        layout.place_chips();
        layout.place_stacks();
        layout.wire_meshes()?;
        match config.architecture {
            Architecture::Substrate => layout.wire_substrate()?,
            Architecture::Interposer => layout.wire_interposer()?,
            Architecture::Wireless => layout.wire_wireless()?,
        }
        Ok(layout)
    }

    // ---- construction helpers ------------------------------------------

    fn chip_origin(&self, chip: usize) -> Point {
        let (_, gcols) = self.chip_grid;
        let row = chip / gcols;
        let col = chip % gcols;
        let g = &self.config.geometry;
        let x0 = g.stack_width_mm + g.chip_gap_mm;
        Point::new(
            x0 + col as f64 * (self.chip_spec.die_width_mm() + g.chip_gap_mm),
            row as f64 * (self.chip_spec.die_height_mm() + g.chip_gap_mm),
        )
    }

    fn place_chips(&mut self) {
        for chip in 0..self.config.num_chips {
            let origin = self.chip_origin(chip);
            for y in 0..self.chip_spec.rows {
                for x in 0..self.chip_spec.cols {
                    let off = self.chip_spec.switch_offset(x, y);
                    let node = self.graph.add_node(Node {
                        kind: NodeKind::Core { chip, x, y },
                        position: Point::new(origin.x + off.x, origin.y + off.y),
                    });
                    self.cores.push(node);
                }
            }
        }
    }

    /// Stacks: first half on the west side, second half on the east side,
    /// each side spread top-down over the chip rows.  A stack's
    /// *adjacent chip* is the chip in the outermost column whose row band
    /// it sits in.
    fn place_stacks(&mut self) {
        let (grows, gcols) = self.chip_grid;
        let per_side = self.config.num_stacks / 2;
        let g = self.config.geometry.clone();
        let package_h =
            grows as f64 * (self.chip_spec.die_height_mm() + g.chip_gap_mm) - g.chip_gap_mm;
        let east_x = g.stack_width_mm
            + g.chip_gap_mm
            + gcols as f64 * (self.chip_spec.die_width_mm() + g.chip_gap_mm);

        for side in 0..2usize {
            for i in 0..per_side {
                let stack = side * per_side + i;
                // Vertical band centre for this stack.
                let band_h = package_h / per_side as f64;
                let cy = (i as f64 + 0.5) * band_h;
                let x = if side == 0 {
                    g.stack_width_mm / 2.0
                } else {
                    east_x + g.stack_width_mm / 2.0
                };
                let node = self.graph.add_node(Node {
                    kind: NodeKind::MemoryLogicDie { stack },
                    position: Point::new(x, cy),
                });
                self.memories.push(node);
                // Adjacent chip: outer column, row band containing cy.
                let chip_row_h = self.chip_spec.die_height_mm() + g.chip_gap_mm;
                let row = ((cy / chip_row_h) as usize).min(grows - 1);
                let col = if side == 0 { 0 } else { gcols - 1 };
                self.stack_adjacent_chip.push(row * gcols + col);
            }
        }
    }

    fn core_node(&self, chip: usize, x: usize, y: usize) -> NodeId {
        self.cores[chip * self.chip_spec.cores() + y * self.chip_spec.cols + x]
    }

    fn wire_meshes(&mut self) -> Result<(), TopologyError> {
        for chip in 0..self.config.num_chips {
            for y in 0..self.chip_spec.rows {
                for x in 0..self.chip_spec.cols {
                    if x + 1 < self.chip_spec.cols {
                        self.graph.add_edge(
                            self.core_node(chip, x, y),
                            self.core_node(chip, x + 1, y),
                            EdgeKind::Mesh,
                        )?;
                    }
                    if y + 1 < self.chip_spec.rows {
                        self.graph.add_edge(
                            self.core_node(chip, x, y),
                            self.core_node(chip, x, y + 1),
                            EdgeKind::Mesh,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pairs of grid-adjacent chips: `(west_or_south, east_or_north,
    /// horizontal?)`.
    fn adjacent_chip_pairs(&self) -> Vec<(usize, usize, bool)> {
        let (grows, gcols) = self.chip_grid;
        let mut pairs = Vec::new();
        for row in 0..grows {
            for col in 0..gcols {
                let chip = row * gcols + col;
                if col + 1 < gcols {
                    pairs.push((chip, chip + 1, true));
                }
                if row + 1 < grows {
                    pairs.push((chip, chip + gcols, false));
                }
            }
        }
        pairs
    }

    fn stack_facing_side(&self, stack: usize) -> Side {
        // West-side stacks face their chip's West boundary and vice versa.
        if stack < self.config.num_stacks / 2 {
            Side::West
        } else {
            Side::East
        }
    }

    fn wire_substrate(&mut self) -> Result<(), TopologyError> {
        for (a, b, horizontal) in self.adjacent_chip_pairs() {
            let (sa, sb) = if horizontal {
                (Side::East, Side::West)
            } else {
                (Side::North, Side::South)
            };
            let (ax, ay) = self.chip_spec.boundary_center(sa);
            let (bx, by) = self.chip_spec.boundary_center(sb);
            self.graph.add_edge(
                self.core_node(a, ax, ay),
                self.core_node(b, bx, by),
                EdgeKind::SerialIo,
            )?;
        }
        for stack in 0..self.config.num_stacks {
            let chip = self.stack_adjacent_chip[stack];
            let side = self.stack_facing_side(stack);
            let (x, y) = self.chip_spec.boundary_center(side);
            self.graph.add_edge(
                self.memories[stack],
                self.core_node(chip, x, y),
                EdgeKind::WideIo,
            )?;
        }
        Ok(())
    }

    fn wire_interposer(&mut self) -> Result<(), TopologyError> {
        for (a, b, horizontal) in self.adjacent_chip_pairs() {
            let (sa, sb) = if horizontal {
                (Side::East, Side::West)
            } else {
                (Side::North, Side::South)
            };
            let ba = self.chip_spec.boundary_switches(sa);
            let bb = self.chip_spec.boundary_switches(sb);
            let len = ba.len();
            let k = self
                .config
                .interposer_links_per_boundary
                .unwrap_or(len)
                .clamp(1, len);
            for i in 0..k {
                // Evenly spaced attachment points along the boundary.
                let idx = (2 * i + 1) * len / (2 * k);
                let (ax, ay) = ba[idx];
                let (bx, by) = bb[idx];
                self.graph.add_edge(
                    self.core_node(a, ax, ay),
                    self.core_node(b, bx, by),
                    EdgeKind::Interposer,
                )?;
            }
        }
        // §IV.A: "In the case of wireline configurations, the memory
        // stacks are connected to the I/O modules of the processing
        // chips through [a] 128 bit wide channel" — the interposer only
        // raises C-C bandwidth; M-C stays the wide I/O, as on the
        // substrate.
        for stack in 0..self.config.num_stacks {
            let chip = self.stack_adjacent_chip[stack];
            let side = self.stack_facing_side(stack);
            let (x, y) = self.chip_spec.boundary_center(side);
            self.graph.add_edge(
                self.memories[stack],
                self.core_node(chip, x, y),
                EdgeKind::WideIo,
            )?;
        }
        Ok(())
    }

    fn wire_wireless(&mut self) -> Result<(), TopologyError> {
        if self.config.cores_per_wi == 0 {
            return Err(TopologyError::InvalidWirelessDensity {
                cores_per_wi: 0,
                cores_per_chip: self.config.cores_per_chip,
            });
        }
        // At least one WI per chip keeps every chip reachable (§IV.C).
        let cores_per_wi = self.config.cores_per_wi.min(self.config.cores_per_chip);
        if !self.config.cores_per_chip.is_multiple_of(cores_per_wi) {
            return Err(TopologyError::InvalidWirelessDensity {
                cores_per_wi,
                cores_per_chip: self.config.cores_per_chip,
            });
        }
        let clusters_per_chip = self.config.cores_per_chip / cores_per_wi;

        for chip in 0..self.config.num_chips {
            let clusters = partition_clusters(&self.chip_spec, clusters_per_chip)?;
            for cluster in &clusters {
                let (x, y) = cluster.wi;
                let node = self.core_node(chip, x, y);
                let id = WiId(self.wis.len());
                self.wis.push(WirelessInterface {
                    id,
                    node,
                    host: WiHost::Chip { chip, cluster: cluster.id },
                });
                self.wi_by_node.insert(node, id);
            }
            self.clusters.push(clusters);
        }
        for stack in 0..self.config.num_stacks {
            let node = self.memories[stack];
            let id = WiId(self.wis.len());
            self.wis.push(WirelessInterface {
                id,
                node,
                host: WiHost::Memory { stack },
            });
            self.wi_by_node.insert(node, id);
        }
        // Single-hop wireless links between every WI pair.
        for i in 0..self.wis.len() {
            for j in (i + 1)..self.wis.len() {
                self.graph.add_edge(
                    self.wis[i].node,
                    self.wis[j].node,
                    EdgeKind::Wireless,
                )?;
            }
        }
        Ok(())
    }

    // ---- accessors -------------------------------------------------------

    /// The configuration this layout was built from.
    pub fn config(&self) -> &MultichipConfig {
        &self.config
    }

    /// The per-chip mesh dimensions.
    pub fn chip_spec(&self) -> &ChipSpec {
        &self.chip_spec
    }

    /// The chip grid `(rows, cols)` on the package.
    pub fn chip_grid(&self) -> (usize, usize) {
        self.chip_grid
    }

    /// The interconnection graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Switch of every core, indexed by global core id.
    pub fn core_nodes(&self) -> &[NodeId] {
        &self.cores
    }

    /// Logic-die switch of every memory stack, indexed by stack id.
    pub fn memory_nodes(&self) -> &[NodeId] {
        &self.memories
    }

    /// All wireless interfaces in MAC sequence order (empty for wired
    /// architectures).
    pub fn wireless_interfaces(&self) -> &[WirelessInterface] {
        &self.wis
    }

    /// The WI at `node`, if any.
    pub fn wi_at(&self, node: NodeId) -> Option<WiId> {
        self.wi_by_node.get(&node).copied()
    }

    /// The chip that owns `node`, or `None` for memory logic dies.
    pub fn chip_of(&self, node: NodeId) -> Option<usize> {
        match self.graph.node(node)?.kind {
            NodeKind::Core { chip, .. } => Some(chip),
            NodeKind::MemoryLogicDie { .. } => None,
        }
    }

    /// The chip a stack is wired (or nearest) to.
    pub fn adjacent_chip_of_stack(&self, stack: usize) -> Option<usize> {
        self.stack_adjacent_chip.get(stack).copied()
    }

    /// The stack physically nearest to `chip` (ties toward the lower
    /// stack id) — the "home" stack NUMA-affine workloads prefer.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn home_stack_of_chip(&self, chip: usize) -> usize {
        assert!(chip < self.config.num_chips, "chip {chip} out of range");
        let origin = self.chip_origin(chip);
        let centre = Point::new(
            origin.x + self.chip_spec.die_width_mm() / 2.0,
            origin.y + self.chip_spec.die_height_mm() / 2.0,
        );
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (stack, &node) in self.memories.iter().enumerate() {
            let pos = self.graph.node(node).expect("memory node exists").position;
            let d = centre.distance(pos);
            if d < best_d - 1e-9 {
                best = stack;
                best_d = d;
            }
        }
        best
    }

    /// Home stack of every core, by global core id (see
    /// [`MultichipLayout::home_stack_of_chip`]).
    pub fn home_stacks(&self) -> Vec<usize> {
        let per_chip: Vec<usize> = (0..self.config.num_chips)
            .map(|c| self.home_stack_of_chip(c))
            .collect();
        (0..self.total_cores())
            .map(|core| per_chip[core / self.chip_spec.cores()])
            .collect()
    }

    /// Per-chip clusters (wireless architecture only; empty otherwise).
    pub fn clusters(&self) -> &[Vec<Cluster>] {
        &self.clusters
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(chips: usize, stacks: usize, arch: Architecture) -> MultichipLayout {
        MultichipLayout::build(&MultichipConfig::xcym(chips, stacks, arch)).unwrap()
    }

    #[test]
    fn near_square_grids() {
        assert_eq!(near_square_grid(1), (1, 1));
        assert_eq!(near_square_grid(2), (1, 2));
        assert_eq!(near_square_grid(4), (2, 2));
        assert_eq!(near_square_grid(8), (2, 4));
        assert_eq!(near_square_grid(16), (4, 4));
    }

    #[test]
    fn paper_4c4m_wireless_structure() {
        let l = build(4, 4, Architecture::Wireless);
        assert_eq!(l.total_cores(), 64);
        assert_eq!(l.memory_nodes().len(), 4);
        // 1 WI per 16-core chip + 1 per stack = 8 WIs.
        assert_eq!(l.wireless_interfaces().len(), 8);
        // WI ids are the MAC sequence: chips first, then stacks.
        assert!(matches!(l.wireless_interfaces()[0].host, WiHost::Chip { chip: 0, .. }));
        assert!(matches!(l.wireless_interfaces()[7].host, WiHost::Memory { stack: 3 }));
        // Complete WI graph: C(8,2) = 28 wireless edges.
        assert_eq!(l.graph().edges_of_kind(EdgeKind::Wireless).count(), 28);
        // Mesh edges: 4 chips x (2 * 4 * 3) = 96.
        assert_eq!(l.graph().edges_of_kind(EdgeKind::Mesh).count(), 96);
        assert!(l.graph().is_connected());
    }

    #[test]
    fn paper_4c4m_substrate_structure() {
        let l = build(4, 4, Architecture::Substrate);
        // 2x2 chip grid: 4 adjacent pairs -> 4 serial links.
        assert_eq!(l.graph().edges_of_kind(EdgeKind::SerialIo).count(), 4);
        // One wide I/O per stack.
        assert_eq!(l.graph().edges_of_kind(EdgeKind::WideIo).count(), 4);
        assert_eq!(l.graph().edges_of_kind(EdgeKind::Wireless).count(), 0);
        assert!(l.graph().is_connected());
        // Every stack has a distinct adjacent chip in the 2x2 grid.
        let mut adj: Vec<_> = (0..4)
            .map(|s| l.adjacent_chip_of_stack(s).unwrap())
            .collect();
        adj.sort_unstable();
        assert_eq!(adj, vec![0, 1, 2, 3]);
    }

    #[test]
    fn paper_4c4m_interposer_structure() {
        let l = build(4, 4, Architecture::Interposer);
        // 4 adjacent chip pairs x 4 boundary links; stacks keep their
        // wide I/O (§IV.A applies to both wireline configurations).
        assert_eq!(l.graph().edges_of_kind(EdgeKind::Interposer).count(), 16);
        assert_eq!(l.graph().edges_of_kind(EdgeKind::WideIo).count(), 4);
        assert_eq!(l.graph().edges_of_kind(EdgeKind::SerialIo).count(), 0);
        assert!(l.graph().is_connected());
    }

    #[test]
    fn interposer_has_more_interchip_wires_than_substrate() {
        let s = build(4, 4, Architecture::Substrate);
        let i = build(4, 4, Architecture::Interposer);
        let s_cross = s.graph().edges_of_kind(EdgeKind::SerialIo).count()
            + s.graph().edges_of_kind(EdgeKind::WideIo).count();
        let i_cross = i.graph().edges_of_kind(EdgeKind::Interposer).count();
        assert!(i_cross > s_cross, "interposer must offer higher bisection");
    }

    #[test]
    fn one_chip_system_has_four_wis_plus_stacks() {
        // 1C4M: 64-core chip, 1 WI / 16 cores = 4 chip WIs + 4 stack WIs.
        let l = build(1, 4, Architecture::Wireless);
        assert_eq!(l.total_cores(), 64);
        assert_eq!(l.wireless_interfaces().len(), 8);
        assert_eq!(l.chip_grid(), (1, 1));
        assert!(l.graph().is_connected());
    }

    #[test]
    fn eight_chip_system_uses_one_wi_per_chip() {
        let l = build(8, 4, Architecture::Wireless);
        assert_eq!(l.config().cores_per_chip, 8);
        // 8 chip WIs + 4 stack WIs.
        assert_eq!(l.wireless_interfaces().len(), 12);
        assert!(l.graph().is_connected());
    }

    #[test]
    fn substrate_chains_need_multiple_hops_between_distant_chips() {
        let l = build(8, 4, Architecture::Substrate);
        assert!(l.graph().is_connected());
        // Far-corner chips are several serial hops apart: BFS distance
        // between their first cores must exceed an intra-chip distance.
        let far_a = l.core_nodes()[0];
        let far_b = *l.core_nodes().last().unwrap();
        let hops = l.graph().bfs_hops(far_a)[far_b.index()];
        assert!(hops > 6, "expected long multi-chip path, got {hops}");
    }

    #[test]
    fn odd_stack_count_is_rejected() {
        let mut c = MultichipConfig::xcym(4, 4, Architecture::Substrate);
        c.num_stacks = 3;
        assert!(matches!(
            MultichipLayout::build(&c),
            Err(TopologyError::UnsupportedMemoryCount { stacks: 3, .. })
        ));
    }

    #[test]
    fn zero_parameters_are_rejected() {
        let mut c = MultichipConfig::xcym(4, 4, Architecture::Substrate);
        c.num_chips = 0;
        assert!(MultichipLayout::build(&c).is_err());
        let mut c = MultichipConfig::xcym(4, 4, Architecture::Substrate);
        c.num_stacks = 0;
        assert!(MultichipLayout::build(&c).is_err());
        let mut c = MultichipConfig::xcym(4, 4, Architecture::Substrate);
        c.cores_per_chip = 0;
        assert!(MultichipLayout::build(&c).is_err());
    }

    #[test]
    fn invalid_wi_density_is_rejected() {
        let mut c = MultichipConfig::xcym(4, 4, Architecture::Wireless);
        c.cores_per_wi = 3; // 16 % 3 != 0
        assert!(matches!(
            MultichipLayout::build(&c),
            Err(TopologyError::InvalidWirelessDensity { .. })
        ));
    }

    #[test]
    fn wired_architectures_carry_no_wis() {
        for arch in [Architecture::Substrate, Architecture::Interposer] {
            let l = build(4, 4, arch);
            assert!(l.wireless_interfaces().is_empty());
            assert!(l.clusters().is_empty());
        }
    }

    #[test]
    fn wi_lookup_by_node_round_trips() {
        let l = build(4, 4, Architecture::Wireless);
        for wi in l.wireless_interfaces() {
            assert_eq!(l.wi_at(wi.node), Some(wi.id));
        }
        // A non-WI switch has no WI.
        let non_wi = l
            .core_nodes()
            .iter()
            .find(|n| l.wi_at(**n).is_none())
            .copied();
        assert!(non_wi.is_some());
    }

    #[test]
    fn chip_of_distinguishes_cores_from_memory() {
        let l = build(4, 4, Architecture::Substrate);
        assert_eq!(l.chip_of(l.core_nodes()[0]), Some(0));
        assert_eq!(l.chip_of(*l.core_nodes().last().unwrap()), Some(3));
        assert_eq!(l.chip_of(l.memory_nodes()[0]), None);
    }

    #[test]
    fn wireless_ranges_are_within_package_scale() {
        // mm-wave links are demonstrated up to 10 m; package distances
        // must be a few cm at most.
        let l = build(4, 4, Architecture::Wireless);
        for (_, e) in l.graph().edges_of_kind(EdgeKind::Wireless) {
            assert!(e.length_mm > 0.0);
            assert!(e.length_mm < 100.0, "WI separation {} mm", e.length_mm);
        }
    }

    #[test]
    fn labels_follow_paper_convention() {
        let c = MultichipConfig::xcym(4, 4, Architecture::Wireless);
        assert_eq!(c.label(), "4C4M (Wireless)");
        assert_eq!(Architecture::Interposer.label(), "Interposer");
    }

    #[test]
    fn mesh_links_have_tile_pitch_length() {
        let l = build(4, 4, Architecture::Substrate);
        for (_, e) in l.graph().edges_of_kind(EdgeKind::Mesh) {
            assert!((e.length_mm - 2.5).abs() < 1e-9);
        }
    }
}
