//! Plain-text rendering of a package layout, for docs and debugging.
//!
//! Chips draw as boxes of core switches (`.`), wireless interfaces as
//! `*`, memory logic dies as `M` — a quick way to eyeball a floorplan:
//!
//! ```text
//!  M   ┌....┐ ┌....┐   M
//!  M   |.*..| |.*..|   M
//!      └....┘ └....┘
//! ```

use crate::multichip::MultichipLayout;
use crate::NodeKind;

/// Renders the package floorplan as ASCII art (one character per
/// 1.25 mm × 2.5 mm cell; x is compressed because terminal cells are
/// tall).
pub fn ascii_map(layout: &MultichipLayout) -> String {
    const X_SCALE: f64 = 1.25;
    const Y_SCALE: f64 = 2.5;
    let g = layout.graph();
    let (mut max_x, mut max_y) = (0.0f64, 0.0f64);
    for n in g.nodes() {
        max_x = max_x.max(n.position.x);
        max_y = max_y.max(n.position.y);
    }
    let cols = (max_x / X_SCALE).ceil() as usize + 2;
    let rows = (max_y / Y_SCALE).ceil() as usize + 2;
    let mut canvas = vec![vec![' '; cols]; rows];

    for (i, n) in g.nodes().iter().enumerate() {
        let cx = (n.position.x / X_SCALE).round() as usize;
        let cy = (n.position.y / Y_SCALE).round() as usize;
        let id = crate::NodeId(i);
        let ch = match n.kind {
            NodeKind::MemoryLogicDie { .. } => 'M',
            NodeKind::Core { .. } => {
                if layout.wi_at(id).is_some() {
                    '*'
                } else {
                    '.'
                }
            }
        };
        // Memory WIs keep the M glyph but uppercase-star when radioed.
        let ch = if matches!(n.kind, NodeKind::MemoryLogicDie { .. })
            && layout.wi_at(id).is_some()
        {
            'W'
        } else {
            ch
        };
        canvas[rows - 1 - cy][cx] = ch;
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    out.push_str(&format!(
        "{} — {} switches ('.' core, '*' core+WI, 'M' memory, 'W' memory+WI)\n",
        layout.config().label(),
        g.node_count()
    ));
    for row in canvas {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, MultichipConfig, MultichipLayout};

    fn render(arch: Architecture) -> String {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
        // Drop the header line: glyph counts apply to the canvas only.
        let map = ascii_map(&layout);
        map.split_once('\n').unwrap().1.to_string()
    }

    #[test]
    fn wireless_map_shows_wis_and_memory_radios() {
        let map = render(Architecture::Wireless);
        // 4 chip WIs and 4 radio-equipped stacks.
        assert_eq!(map.matches('*').count(), 4, "{map}");
        assert_eq!(map.matches('W').count(), 4, "{map}");
        assert_eq!(map.matches('.').count(), 60, "{map}");
    }

    #[test]
    fn wired_map_has_plain_memory_dies() {
        let map = render(Architecture::Substrate);
        assert_eq!(map.matches('M').count(), 4, "{map}");
        assert_eq!(map.matches('*').count(), 0);
        assert_eq!(map.matches('.').count(), 64);
    }

    #[test]
    fn header_names_the_system() {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, Architecture::Interposer))
                .unwrap();
        let map = ascii_map(&layout);
        assert!(map.starts_with("4C4M (Interposer)"));
        assert!(map.contains("68 switches"));
    }
}
