//! Property-based tests over the whole buildable configuration space.

use proptest::prelude::*;

use wimnet_topology::{
    chip::{mad_optimal, partition_clusters},
    Architecture, ChipSpec, EdgeKind, MultichipConfig, MultichipLayout,
};

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    prop_oneof![
        Just(Architecture::Substrate),
        Just(Architecture::Interposer),
        Just(Architecture::Wireless),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every buildable layout is connected, has dense node ids, and its
    /// endpoint counts match the configuration.
    #[test]
    fn layouts_are_connected_and_consistent(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
        stacks in prop_oneof![Just(2usize), Just(4), Just(8)],
        arch in arch_strategy(),
    ) {
        let cfg = MultichipConfig::xcym(chips, stacks, arch);
        let layout = MultichipLayout::build(&cfg).unwrap();
        let g = layout.graph();
        prop_assert!(g.is_connected());
        prop_assert_eq!(layout.core_nodes().len(), cfg.total_cores());
        prop_assert_eq!(layout.memory_nodes().len(), stacks);
        prop_assert_eq!(
            g.node_count(),
            cfg.total_cores() + stacks,
            "one switch per core plus one per stack"
        );
        // Every core id maps to a distinct node.
        let mut nodes: Vec<_> = layout.core_nodes().to_vec();
        nodes.extend_from_slice(layout.memory_nodes());
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), g.node_count());
    }

    /// Wireless layouts have a complete WI graph and every WI is on a
    /// distinct switch.
    #[test]
    fn wireless_wi_graph_is_complete(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        stacks in prop_oneof![Just(2usize), Just(4)],
    ) {
        let cfg = MultichipConfig::xcym(chips, stacks, Architecture::Wireless);
        let layout = MultichipLayout::build(&cfg).unwrap();
        let wis = layout.wireless_interfaces();
        let n = wis.len();
        prop_assert!(n >= chips + stacks);
        let radio_edges = layout.graph().edges_of_kind(EdgeKind::Wireless).count();
        prop_assert_eq!(radio_edges, n * (n - 1) / 2, "complete WI graph");
        let mut nodes: Vec<_> = wis.iter().map(|w| w.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), n, "one WI per switch");
        // WI ids are the MAC sequence 0..n.
        for (i, wi) in wis.iter().enumerate() {
            prop_assert_eq!(wi.id.index(), i);
        }
    }

    /// Wired architectures never contain wireless edges, and vice versa
    /// contain no radios.
    #[test]
    fn wired_layouts_have_no_radio_artifacts(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        wired_arch in prop_oneof![Just(Architecture::Substrate), Just(Architecture::Interposer)],
    ) {
        let cfg = MultichipConfig::xcym(chips, 4, wired_arch);
        let layout = MultichipLayout::build(&cfg).unwrap();
        prop_assert_eq!(layout.graph().edges_of_kind(EdgeKind::Wireless).count(), 0);
        prop_assert!(layout.wireless_interfaces().is_empty());
    }

    /// Chip meshes partition into equal rectangular clusters whenever the
    /// divisibility precondition holds, and the MAD point is a member.
    #[test]
    fn cluster_partitions_are_exact(
        cores in prop_oneof![Just(4usize), Just(8), Just(16), Just(32), Just(64)],
        clusters in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let spec = ChipSpec::with_cores(cores).unwrap();
        match partition_clusters(&spec, clusters) {
            Ok(parts) => {
                prop_assert_eq!(parts.len(), clusters);
                let mut all: Vec<_> =
                    parts.iter().flat_map(|c| c.members.clone()).collect();
                all.sort_unstable();
                all.dedup();
                prop_assert_eq!(all.len(), cores, "exact cover");
                for c in &parts {
                    prop_assert_eq!(c.members.len(), cores / clusters);
                    prop_assert!(c.members.contains(&c.wi), "WI inside cluster");
                }
            }
            Err(_) => {
                // Only legal when no factorisation divides the mesh.
                let mut any_fit = false;
                for kr in 1..=clusters {
                    if clusters.is_multiple_of(kr) {
                        let kc = clusters / kr;
                        if spec.rows.is_multiple_of(kr) && spec.cols.is_multiple_of(kc) {
                            any_fit = true;
                        }
                    }
                }
                let impossible = !cores.is_multiple_of(clusters) || !any_fit;
                prop_assert!(impossible, "rejected a feasible partition");
            }
        }
    }

    /// The MAD-optimal switch really minimises total Manhattan distance.
    #[test]
    fn mad_optimal_is_minimal(
        members in prop::collection::btree_set((0usize..8, 0usize..8), 1..20),
    ) {
        let members: Vec<_> = members.into_iter().collect();
        let best = mad_optimal(&members);
        let cost = |p: (usize, usize)| -> usize {
            members
                .iter()
                .map(|&(x, y)| x.abs_diff(p.0) + y.abs_diff(p.1))
                .sum()
        };
        let best_cost = cost(best);
        for &m in &members {
            prop_assert!(best_cost <= cost(m));
        }
        prop_assert!(members.contains(&best));
    }

    /// Link lengths are positive and within package scale; mesh links sit
    /// exactly at the tile pitch.
    #[test]
    fn geometry_is_sane(
        chips in prop_oneof![Just(1usize), Just(4), Just(8)],
        arch in arch_strategy(),
    ) {
        let cfg = MultichipConfig::xcym(chips, 4, arch);
        let layout = MultichipLayout::build(&cfg).unwrap();
        for e in layout.graph().edges() {
            prop_assert!(e.length_mm > 0.0, "zero-length {:?}", e.kind);
            prop_assert!(e.length_mm < 200.0, "{:?} spans {} mm", e.kind, e.length_mm);
            if e.kind == EdgeKind::Mesh {
                prop_assert!((e.length_mm - 2.5).abs() < 1e-9);
            }
        }
    }

    /// Home stacks point at real stacks near the chip: the home stack of
    /// a stack-adjacent chip is one of the stacks adjacent to it.
    #[test]
    fn home_stack_is_nearest(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        stacks in prop_oneof![Just(2usize), Just(4)],
    ) {
        let cfg = MultichipConfig::xcym(chips, stacks, Architecture::Substrate);
        let layout = MultichipLayout::build(&cfg).unwrap();
        for s in 0..stacks {
            let chip = layout.adjacent_chip_of_stack(s).unwrap();
            let home = layout.home_stack_of_chip(chip);
            // The home stack of the adjacent chip must itself be adjacent
            // to that chip (possibly a different stack on the same side).
            prop_assert_eq!(
                layout.adjacent_chip_of_stack(home).unwrap() == chip
                    || home == s,
                true
            );
        }
    }
}
