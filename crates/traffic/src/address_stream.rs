//! Deterministic memory address streams.
//!
//! The engine used to synthesize stack addresses from a bare counter,
//! so every stack saw one degenerate sequential walk: row-buffer
//! behaviour collapsed to "almost always hit" and scheduler policy was
//! unobservable.  This module provides the address side of memory
//! workloads as **pure functions of a [`StreamKey`] and the request
//! ordinal** — the same counter-based construction as the injection
//! RNG (`docs/sweeps.md`), so streams are reproducible regardless of
//! arrival timing, sweep order, or pool shape.
//!
//! A stream yields *stack-local block indices*; the engine maps them
//! onto the package-wide interleave (`addr = (block × stacks + stack) ×
//! block_bytes`), which keeps every generated address on the stack it
//! was generated for.  Four generators cover the classic row-buffer
//! regimes:
//!
//! * [`AddressStreamSpec::Sequential`] — consecutive blocks: the old
//!   counter behaviour, maximal row locality;
//! * [`AddressStreamSpec::Strided`] — constant stride in blocks; large
//!   strides defeat the row buffer and expose page-miss timing;
//! * [`AddressStreamSpec::Uniform`] — counter-RNG uniform over a
//!   region: the classic random-access worst case;
//! * [`AddressStreamSpec::HotRow`] — a zipf-like two-level mix: with
//!   probability `hot_fraction` the access lands in a small hot set
//!   (high hit rate), else uniformly in the region — the skewed reuse
//!   real footprints show.
//!
//! **Laws** (tested below): every stream is a pure function of
//! `(seed, stream id, ordinal)` — querying any subset of ordinals in
//! any order yields the same blocks — and each generator keeps its
//! structural promise (consecutiveness, stride spacing, region bounds,
//! hot-set concentration).

use rand::counter::StreamKey;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The stack-local block space every stream draws from: 2⁴⁶ 64-byte
/// blocks (4 EiB) per stack.  Bounding the space keeps the engine's
/// package-interleave mapping (`(block × stacks + stack) × 64`) safely
/// inside `u64` for any plausible stack count; [`AddressStreamSpec::check`]
/// rejects regions beyond it and the walking generators wrap into it.
pub const MAX_REGION_BLOCKS: u64 = 1 << 46;

/// Which address generator a memory workload drives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AddressStreamSpec {
    /// Consecutive stack-local blocks (maximal row-buffer locality —
    /// the legacy engine counter).
    #[default]
    Sequential,
    /// Constant stride in blocks.
    Strided {
        /// Blocks between consecutive accesses (≥ 1).
        stride_blocks: u64,
    },
    /// Uniform random over a region of blocks.
    Uniform {
        /// Region size in blocks (≥ 1).
        region_blocks: u64,
    },
    /// Two-level hot/cold mix: `hot_fraction` of accesses land in the
    /// first `hot_blocks` of the region, the rest uniformly anywhere in
    /// it.
    HotRow {
        /// Region size in blocks (≥ 1).
        region_blocks: u64,
        /// Hot-set size in blocks (≥ 1, ≤ `region_blocks`).
        hot_blocks: u64,
        /// Probability of a hot access, in `[0, 1]`.
        hot_fraction: f64,
    },
}

impl AddressStreamSpec {
    /// A compact label for sweep reports that encodes the parameters,
    /// so two variants of the same family stay distinguishable in
    /// point labels: `"seq"`, `"stride8"`, `"uniform4096"`,
    /// `"hotrow16/4096@0.9"`.
    pub fn label(&self) -> String {
        match *self {
            AddressStreamSpec::Sequential => "seq".to_string(),
            AddressStreamSpec::Strided { stride_blocks } => format!("stride{stride_blocks}"),
            AddressStreamSpec::Uniform { region_blocks } => format!("uniform{region_blocks}"),
            AddressStreamSpec::HotRow { region_blocks, hot_blocks, hot_fraction } => {
                format!("hotrow{hot_blocks}/{region_blocks}@{hot_fraction}")
            }
        }
    }

    /// Checks the parameters, describing the first problem found.
    ///
    /// # Errors
    ///
    /// A zero stride/region/hot set, a hot set larger than its region,
    /// a stride or region beyond the [`MAX_REGION_BLOCKS`] block
    /// space, or a hot fraction outside `[0, 1]`.
    pub fn check(&self) -> Result<(), String> {
        let bounded = |what: &str, blocks: u64| {
            if blocks < 1 {
                Err(format!("{what} must be at least one block"))
            } else if blocks > MAX_REGION_BLOCKS {
                Err(format!(
                    "{what} of {blocks} blocks exceeds the {MAX_REGION_BLOCKS}-block space"
                ))
            } else {
                Ok(())
            }
        };
        match *self {
            AddressStreamSpec::Sequential => Ok(()),
            AddressStreamSpec::Strided { stride_blocks } => bounded("stride", stride_blocks),
            AddressStreamSpec::Uniform { region_blocks } => bounded("region", region_blocks),
            AddressStreamSpec::HotRow { region_blocks, hot_blocks, hot_fraction } => {
                bounded("region", region_blocks)?;
                if hot_blocks < 1 || hot_blocks > region_blocks {
                    Err("hot set must be non-empty and fit the region".to_string())
                } else if !(0.0..=1.0).contains(&hot_fraction) {
                    Err(format!("hot fraction {hot_fraction} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Panicking form of [`AddressStreamSpec::check`].
    ///
    /// # Panics
    ///
    /// Panics when the check fails.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid address stream {self:?}: {e}");
        }
    }
}

/// A compiled, seeded address stream (one per stack in the engine).
#[derive(Debug, Clone)]
pub struct AddressStream {
    spec: AddressStreamSpec,
    key: StreamKey,
}

/// The dedicated stream-id offset for address draws, away from the
/// per-core destination streams (small ids) and the injection streams
/// (near `u64::MAX`).
const ADDRESS_STREAM_BASE: u64 = 0xADD7_0000_0000_0000;

impl AddressStream {
    /// Compiles `spec` on `seed`'s address stream `stream` (the engine
    /// passes the stack index).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`AddressStreamSpec::validate`].
    pub fn new(spec: AddressStreamSpec, seed: u64, stream: u64) -> Self {
        spec.validate();
        AddressStream {
            spec,
            key: StreamKey::new(seed, ADDRESS_STREAM_BASE ^ stream),
        }
    }

    /// The compiled spec.
    pub fn spec(&self) -> AddressStreamSpec {
        self.spec
    }

    /// The stack-local block index of request `ordinal` — a pure
    /// function of `(seed, stream, ordinal)`, always inside the
    /// [`MAX_REGION_BLOCKS`] block space (the walking generators wrap
    /// into it; no real run approaches the boundary).
    pub fn block(&self, ordinal: u64) -> u64 {
        match self.spec {
            AddressStreamSpec::Sequential => ordinal & (MAX_REGION_BLOCKS - 1),
            AddressStreamSpec::Strided { stride_blocks } => {
                ordinal.wrapping_mul(stride_blocks) & (MAX_REGION_BLOCKS - 1)
            }
            AddressStreamSpec::Uniform { region_blocks } => {
                if region_blocks == 1 {
                    0
                } else {
                    self.key.rng(ordinal).gen_range(0..region_blocks)
                }
            }
            AddressStreamSpec::HotRow { region_blocks, hot_blocks, hot_fraction } => {
                let mut rng = self.key.rng(ordinal);
                if rng.gen::<f64>() < hot_fraction {
                    if hot_blocks == 1 {
                        0
                    } else {
                        rng.gen_range(0..hot_blocks)
                    }
                } else if region_blocks == 1 {
                    0
                } else {
                    rng.gen_range(0..region_blocks)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reproduces_the_legacy_counter() {
        let s = AddressStream::new(AddressStreamSpec::Sequential, 7, 0);
        for i in 0..100 {
            assert_eq!(s.block(i), i);
        }
    }

    #[test]
    fn strided_keeps_its_spacing() {
        let s = AddressStream::new(AddressStreamSpec::Strided { stride_blocks: 96 }, 7, 2);
        for i in 0..100 {
            assert_eq!(s.block(i + 1) - s.block(i), 96);
        }
    }

    #[test]
    fn uniform_stays_in_region_and_spreads() {
        let s = AddressStream::new(AddressStreamSpec::Uniform { region_blocks: 64 }, 9, 1);
        let mut seen = [false; 64];
        for i in 0..2_000 {
            let b = s.block(i);
            assert!(b < 64);
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "uniform must reach the whole region");
    }

    #[test]
    fn hot_row_concentrates_by_its_fraction() {
        let spec = AddressStreamSpec::HotRow {
            region_blocks: 1 << 20,
            hot_blocks: 32,
            hot_fraction: 0.9,
        };
        let s = AddressStream::new(spec, 11, 3);
        let n = 20_000u64;
        let hot = (0..n).filter(|&i| s.block(i) < 32).count() as f64 / n as f64;
        // 90% targeted + ~0.003% of cold draws landing there anyway.
        assert!((hot - 0.9).abs() < 0.01, "hot share {hot}");
    }

    #[test]
    fn blocks_are_pure_functions_of_the_ordinal() {
        let spec = AddressStreamSpec::HotRow {
            region_blocks: 4_096,
            hot_blocks: 8,
            hot_fraction: 0.5,
        };
        let s = AddressStream::new(spec, 13, 5);
        let forward: Vec<u64> = (0..500).map(|i| s.block(i)).collect();
        let backward: Vec<u64> = (0..500).rev().map(|i| s.block(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Distinct stacks (stream ids) see distinct realizations.
        let other = AddressStream::new(spec, 13, 6);
        assert_ne!(forward, (0..500).map(|i| other.block(i)).collect::<Vec<_>>());
    }

    #[test]
    fn labels_encode_the_parameters() {
        assert_eq!(AddressStreamSpec::Sequential.label(), "seq");
        assert_eq!(AddressStreamSpec::Strided { stride_blocks: 8 }.label(), "stride8");
        assert_eq!(AddressStreamSpec::Uniform { region_blocks: 4 }.label(), "uniform4");
        let h = AddressStreamSpec::HotRow {
            region_blocks: 4,
            hot_blocks: 1,
            hot_fraction: 0.5,
        };
        assert_eq!(h.label(), "hotrow1/4@0.5");
        // Two variants of the same family stay distinguishable.
        assert_ne!(
            AddressStreamSpec::Uniform { region_blocks: 4 }.label(),
            AddressStreamSpec::Uniform { region_blocks: 8 }.label()
        );
    }

    #[test]
    #[should_panic]
    fn zero_stride_panics() {
        AddressStream::new(AddressStreamSpec::Strided { stride_blocks: 0 }, 0, 0);
    }

    #[test]
    fn oversized_regions_are_rejected_and_walks_stay_bounded() {
        // Regions beyond the block space fail the check (they would
        // overflow the engine's package-interleave mapping)…
        assert!(AddressStreamSpec::Uniform { region_blocks: MAX_REGION_BLOCKS + 1 }
            .check()
            .is_err());
        assert!(AddressStreamSpec::Strided { stride_blocks: u64::MAX }.check().is_err());
        assert!(AddressStreamSpec::Uniform { region_blocks: MAX_REGION_BLOCKS }
            .check()
            .is_ok());
        // …and the walking generators wrap into the space instead of
        // overflowing, even at extreme ordinals.
        let s = AddressStream::new(
            AddressStreamSpec::Strided { stride_blocks: MAX_REGION_BLOCKS },
            3,
            0,
        );
        assert!(s.block(u64::MAX) < MAX_REGION_BLOCKS);
        let seq = AddressStream::new(AddressStreamSpec::Sequential, 3, 0);
        assert!(seq.block(u64::MAX) < MAX_REGION_BLOCKS);
    }

    #[test]
    #[should_panic]
    fn oversized_hot_set_panics() {
        AddressStream::new(
            AddressStreamSpec::HotRow { region_blocks: 4, hot_blocks: 5, hot_fraction: 0.5 },
            0,
            0,
        );
    }
}
