//! SynFull-substitute application traffic models.
//!
//! The paper (§IV.D) extracts PARSEC/SPLASH-2 coherence and memory
//! traffic with SynFull (ref \[20\]), which itself fits *Markov-modulated
//! generators* to full-system traces.  The trained model files are not
//! redistributable, so this module keeps SynFull's generator structure —
//! an application-wide Markov chain over execution phases, each phase a
//! stationary mix of memory reads/writes, coherence control messages and
//! data transfers — and parameterises it per application in
//! [`crate::profiles`].  The paper maps one application thread per chip
//! with all stacks shared (§IV.D); the `locality` knob reproduces that
//! split between intra-thread (on-chip) and inter-thread (cross-chip)
//! coherence.
//!
//! # Event-driven generation and idle fast-forward
//!
//! The generator is **event-indexed**, not cycle-stepped: the phase
//! schedule and the per-phase fire schedule are both precomputed as
//! counter-keyed event streams, so a compute-dominated phase costs
//! O(events), not O(cycles), and [`crate::Workload::next_event_at`] is
//! *exact* — the precondition for the simulation driver's idle
//! fast-forward (see `docs/fast_forward.md`).
//!
//! * **Phase schedule.**  Entering phase segment `s` draws its dwell
//!   (geometric with per-cycle exit probability `1 / mean_dwell_cycles`,
//!   the same law the cycle-stepped Markov chain realises) and its exit
//!   transition from the counter stream keyed by the segment ordinal —
//!   pure functions of `(seed, s)`, independent of how many `generate`
//!   calls happened.
//! * **Fire schedule.**  Within a segment, "some core injects" is a
//!   Bernoulli(`1 − (1 − rate)^cores`) coin per cycle; its first-passage
//!   times come from a per-segment [`GeometricGaps`] iterator — one
//!   mixer draw and one `ln` per *event*, whatever the gap length.
//! * **Fire content.**  A fire cycle draws its core set from the
//!   Binomial count law conditioned on `k ≥ 1`
//!   ([`crate::injection`]'s `conditional_fires`) plus per-`(core,
//!   cycle)` destination streams — together the product-Bernoulli law
//!   conditioned on a non-empty cycle, matching the per-core coin mix
//!   the phase parameters describe.
//!
//! Skipping sanctioned quiet cycles therefore cannot desynchronise
//! anything: the event stream is a pure function of the seed and the
//! cycle indices actually visited, and a fast-forwarded run is
//! bit-identical to a full-stepped one (proven in
//! `tests/determinism.rs`).

use rand::counter::{CounterRng, StreamKey};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::injection::{conditional_fires, p_none_of, GeometricGaps};
use crate::{Endpoint, MessageKind, TrafficEvent, Workload};

/// Stream id of the per-fire-cycle draw (firing count + subset).
/// Per-core destination streams use the core index; the app streams sit
/// at the top of the id space where no core count can reach them (and
/// clear of `crate::injection`'s `u64::MAX` / `u64::MAX − 1`).
const APP_CYCLE_STREAM: u64 = u64::MAX - 8;

/// Stream id of the phase-schedule draws (dwell + exit transition),
/// indexed by segment ordinal.
const APP_PHASE_STREAM: u64 = u64::MAX - 9;

/// Stream id deriving each segment's fire-process seed, indexed by
/// segment ordinal.
const APP_SEGMENT_STREAM: u64 = u64::MAX - 10;

/// Dwells this far out park the workload in its phase "forever"
/// (beyond any simulated horizon, and overflow-free).
const DWELL_NEVER: f64 = 9.2e18; // ~2^63

/// One execution phase of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPhase {
    /// Phase label (e.g. `"compute"`, `"barrier"`).
    pub name: &'static str,
    /// Packets per core per cycle offered in this phase.
    pub injection_rate: f64,
    /// Fraction of packets that are memory accesses.
    pub memory_fraction: f64,
    /// Of memory accesses, the fraction that are reads (expect replies).
    pub read_fraction: f64,
    /// Of core-to-core packets, the fraction that are short coherence
    /// control messages (the rest are cache-line data transfers).
    pub coherence_fraction: f64,
    /// Probability that a core-to-core packet stays on the source chip
    /// (intra-thread sharing).
    pub locality: f64,
    /// Mean phase dwell time in cycles (geometric).
    pub mean_dwell_cycles: f64,
}

/// A complete per-application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (PARSEC/SPLASH-2 benchmark).
    pub name: &'static str,
    /// Benchmark suite, for reports.
    pub suite: &'static str,
    /// Execution phases.
    pub phases: Vec<AppPhase>,
    /// Row-stochastic phase transition matrix (row = current phase).
    pub transitions: Vec<Vec<f64>>,
}

impl AppProfile {
    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square/row-stochastic or any phase
    /// parameter is out of range.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "{}: no phases", self.name);
        assert_eq!(
            self.transitions.len(),
            self.phases.len(),
            "{}: transition rows",
            self.name
        );
        for (i, row) in self.transitions.iter().enumerate() {
            assert_eq!(row.len(), self.phases.len(), "{}: row {i} width", self.name);
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}: row {i} sums to {sum}",
                self.name
            );
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        for p in &self.phases {
            assert!((0.0..=1.0).contains(&p.injection_rate), "{}", self.name);
            assert!((0.0..=1.0).contains(&p.memory_fraction));
            assert!((0.0..=1.0).contains(&p.read_fraction));
            assert!((0.0..=1.0).contains(&p.coherence_fraction));
            assert!((0.0..=1.0).contains(&p.locality));
            assert!(p.mean_dwell_cycles >= 1.0);
        }
    }

    /// Time-weighted mean memory fraction — the knob Fig 6's per-app
    /// variation hinges on.
    pub fn mean_memory_fraction(&self) -> f64 {
        let total_dwell: f64 = self.phases.iter().map(|p| p.mean_dwell_cycles).sum();
        self.phases
            .iter()
            .map(|p| p.memory_fraction * p.mean_dwell_cycles / total_dwell)
            .sum()
    }
}

/// Packet sizes used by the application workloads, in flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppPacketSizes {
    /// Cache-line data packet (paper: 64 flits).
    pub data_flits: u32,
    /// Short coherence / request control packet.
    pub control_flits: u32,
}

impl Default for AppPacketSizes {
    fn default() -> Self {
        AppPacketSizes { data_flits: 64, control_flits: 4 }
    }
}

/// A running application workload over a multichip system.
///
/// Event-driven: see the module docs for the schedule construction and
/// the exact [`Workload::next_event_at`] it yields.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    profile: AppProfile,
    chips: usize,
    cores_per_chip: usize,
    stacks: usize,
    sizes: AppPacketSizes,
    /// Per-core destination stream keys (the `(seed, core)` hash
    /// prefix, precomputed).
    core_keys: Vec<StreamKey>,
    /// Per-fire-cycle draw stream (count + subset).
    cycle_key: StreamKey,
    /// Phase-schedule stream (dwell + exit transition per segment).
    phase_key: StreamKey,
    /// Per-segment fire-process seed stream.
    segment_key: StreamKey,
    /// Ordinal of the current phase segment.
    segment: u64,
    /// Phase of the current segment.
    phase: usize,
    /// First cycle of the *next* segment (`u64::MAX`: parked forever).
    phase_change_at: u64,
    /// Exit-transition uniform drawn at segment entry, consumed when
    /// the segment ends.
    exit_u: f64,
    /// Fire process of the current segment.
    gaps: GeometricGaps,
    /// Next fire cycle inside the current segment, if any.
    pending_fire: Option<u64>,
    /// Reusable fire-set buffer.
    fired: Vec<usize>,
}

impl AppWorkload {
    /// Instantiates `profile` on a system of `chips` chips ×
    /// `cores_per_chip` cores with `stacks` shared memory stacks.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation or the shape is trivial.
    pub fn new(
        profile: AppProfile,
        chips: usize,
        cores_per_chip: usize,
        stacks: usize,
        seed: u64,
    ) -> Self {
        profile.validate();
        assert!(chips > 0 && cores_per_chip > 0 && stacks > 0);
        assert!(chips * cores_per_chip >= 2);
        let cores = chips * cores_per_chip;
        let mut w = AppWorkload {
            profile,
            chips,
            cores_per_chip,
            stacks,
            sizes: AppPacketSizes::default(),
            core_keys: (0..cores as u64).map(|c| StreamKey::new(seed, c)).collect(),
            cycle_key: StreamKey::new(seed, APP_CYCLE_STREAM),
            phase_key: StreamKey::new(seed, APP_PHASE_STREAM),
            segment_key: StreamKey::new(seed, APP_SEGMENT_STREAM),
            segment: 0,
            phase: 0,
            phase_change_at: 0,
            exit_u: 0.0,
            gaps: GeometricGaps::new(0, 0.0, 0),
            pending_fire: None,
            fired: Vec::with_capacity(cores),
        };
        w.enter_segment(0, 0, 0);
        w
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The profile driving this workload.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn total_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Enters phase segment `ordinal` (= `phase_idx`) at cycle `start`:
    /// draws its dwell and exit transition from the segment-keyed phase
    /// stream and builds its fire process.  Pure in `(seed, ordinal,
    /// phase_idx, start)`, so the schedule is the same however many
    /// cycles were skipped on the way here.
    fn enter_segment(&mut self, ordinal: u64, phase_idx: usize, start: u64) {
        self.segment = ordinal;
        self.phase = phase_idx;
        let ph = &self.profile.phases[phase_idx];
        let mut prng = self.phase_key.rng(ordinal);
        let dwell_u: f64 = prng.gen();
        self.exit_u = prng.gen();
        self.phase_change_at = match geometric_dwell(ph.mean_dwell_cycles, dwell_u) {
            Some(d) => start.saturating_add(d),
            None => u64::MAX,
        };
        let p_any = 1.0 - p_none_of(self.total_cores(), ph.injection_rate);
        self.gaps = GeometricGaps::new(self.segment_key.draw0(ordinal), p_any, start);
        self.refill_pending_fire();
    }

    /// Pulls the next fire of the current segment's gap process, keeping
    /// only fires strictly inside the segment.
    fn refill_pending_fire(&mut self) {
        let f = self.gaps.next_fire();
        self.pending_fire = (f < self.phase_change_at).then_some(f);
    }

    /// Advances the phase schedule so the current segment contains
    /// `now`.  O(1) per crossed segment — the driver only ever lands on
    /// fire cycles and segment boundaries, so a quiet phase costs its
    /// two schedule draws, not its dwell in cycles.
    fn advance_phase_to(&mut self, now: u64) {
        while now >= self.phase_change_at {
            let next = transition_target(&self.profile.transitions[self.phase], self.exit_u);
            let (ordinal, start) = (self.segment + 1, self.phase_change_at);
            self.enter_segment(ordinal, next, start);
        }
    }

    fn core_destination(&self, src: usize, local: bool, rng: &mut CounterRng) -> usize {
        let chip = src / self.cores_per_chip;
        if local && self.cores_per_chip > 1 {
            // Another core on the same chip.
            let base = chip * self.cores_per_chip;
            let mut d = rng.gen_range(0..self.cores_per_chip - 1);
            if base + d >= src {
                d += 1;
            }
            base + d
        } else if self.chips > 1 {
            // A core on a different chip.
            let mut other = rng.gen_range(0..self.chips - 1);
            if other >= chip {
                other += 1;
            }
            other * self.cores_per_chip + rng.gen_range(0..self.cores_per_chip)
        } else {
            // Single chip: fall back to any other core.
            let mut d = rng.gen_range(0..self.total_cores() - 1);
            if d >= src {
                d += 1;
            }
            d
        }
    }

    /// The events of the fire at cycle `now`: conditional Binomial core
    /// set, then one destination stream per `(core, cycle)` pair.
    fn fire_events(&mut self, now: u64) -> Vec<TrafficEvent> {
        let phase = self.profile.phases[self.phase].clone();
        let mut fired = std::mem::take(&mut self.fired);
        let mut rng = self.cycle_key.rng(now);
        conditional_fires(self.total_cores(), phase.injection_rate, &mut rng, &mut fired);
        let mut events = Vec::with_capacity(fired.len());
        for &core in &fired {
            let mut rng = self.core_keys[core].rng(now);
            let event = if rng.gen::<f64>() < phase.memory_fraction {
                let stack = rng.gen_range(0..self.stacks);
                if rng.gen::<f64>() < phase.read_fraction {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Memory(stack),
                        flits: self.sizes.control_flits,
                        kind: MessageKind::MemoryRead,
                    }
                } else {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Memory(stack),
                        flits: self.sizes.data_flits,
                        kind: MessageKind::MemoryWrite,
                    }
                }
            } else {
                let local = rng.gen::<f64>() < phase.locality;
                let dest = self.core_destination(core, local, &mut rng);
                if rng.gen::<f64>() < phase.coherence_fraction {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Core(dest),
                        flits: self.sizes.control_flits,
                        kind: MessageKind::Coherence,
                    }
                } else {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Core(dest),
                        flits: self.sizes.data_flits,
                        kind: MessageKind::Oneway,
                    }
                }
            };
            events.push(event);
        }
        self.fired = fired;
        events
    }
}

/// A geometric dwell (support `≥ 1`) with mean `mean_dwell` cycles from
/// the uniform draw `u`, or `None` for "forever" (dwells beyond ~2⁶³).
/// The per-cycle exit probability is `1 / mean_dwell` — exactly the law
/// a cycle-stepped `exit if rng() < 1/dwell` Markov walk realises.
fn geometric_dwell(mean_dwell: f64, u: f64) -> Option<u64> {
    let p_exit = 1.0 / mean_dwell;
    if p_exit >= 1.0 {
        return Some(1);
    }
    // 1 − u is uniform on (0, 1], so the log is finite and ≤ 0.
    let x = (1.0 - u).ln() / (1.0 - p_exit).ln();
    if !x.is_finite() || x >= DWELL_NEVER {
        return None;
    }
    let d = x.ceil();
    Some(if d < 1.0 { 1 } else { d as u64 })
}

/// Walks the row-stochastic `row` at the uniform draw `u` — the same
/// cumulative walk the sequential generator used, so self-transitions
/// re-enter the phase as a fresh segment (memoryless, law-identical).
fn transition_target(row: &[f64], mut u: f64) -> usize {
    for (next, &p) in row.iter().enumerate() {
        if u < p {
            return next;
        }
        u -= p;
    }
    row.len() - 1
}

impl Workload for AppWorkload {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        self.advance_phase_to(now);
        if self.pending_fire != Some(now) {
            return Vec::new();
        }
        let events = self.fire_events(now);
        self.refill_pending_fire();
        events
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.total_cores(), self.stacks)
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Exact within the current segment: the pending fire is the
        // next event, and the segment boundary is where the schedule
        // must be advanced (`generate` runs there; usually no event
        // fires on the boundary itself, and the driver simply asks
        // again).  Quiet phases therefore skip in O(schedule events).
        let fire = self.pending_fire.unwrap_or(u64::MAX);
        Some(fire.min(self.phase_change_at).max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn simple_profile() -> AppProfile {
        AppProfile {
            name: "test-app",
            suite: "TEST",
            phases: vec![
                AppPhase {
                    name: "compute",
                    injection_rate: 0.02,
                    memory_fraction: 0.5,
                    read_fraction: 0.8,
                    coherence_fraction: 0.5,
                    locality: 0.7,
                    mean_dwell_cycles: 100.0,
                },
                AppPhase {
                    name: "barrier",
                    injection_rate: 0.2,
                    memory_fraction: 0.1,
                    read_fraction: 0.5,
                    coherence_fraction: 0.9,
                    locality: 0.2,
                    mean_dwell_cycles: 20.0,
                },
            ],
            transitions: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        }
    }

    #[test]
    fn phases_alternate_over_time() {
        let mut w = AppWorkload::new(simple_profile(), 4, 16, 4, 5);
        let mut seen = [false; 2];
        for now in 0..5_000 {
            w.generate(now);
            seen[w.phase()] = true;
        }
        assert!(seen[0] && seen[1], "both phases must be visited");
    }

    #[test]
    fn events_respect_shape_and_kinds() {
        let mut w = AppWorkload::new(simple_profile(), 4, 16, 4, 5);
        let mut kinds = std::collections::BTreeSet::new();
        for now in 0..2_000 {
            for e in w.generate(now) {
                let Endpoint::Core(s) = e.src else { panic!("sources are cores") };
                assert!(s < 64);
                match e.dest {
                    Endpoint::Core(d) => assert!(d < 64 && d != s),
                    Endpoint::Memory(m) => assert!(m < 4),
                }
                kinds.insert(format!("{:?}", e.kind));
            }
        }
        // All four generated classes appear over 2000 cycles.
        assert!(kinds.len() >= 4, "saw {kinds:?}");
    }

    #[test]
    fn locality_splits_on_and_off_chip_traffic() {
        let mut local_profile = simple_profile();
        local_profile.phases[0].locality = 1.0;
        local_profile.phases[0].memory_fraction = 0.0;
        local_profile.phases[0].injection_rate = 0.5;
        local_profile.transitions = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        let mut w = AppWorkload::new(local_profile, 4, 16, 4, 5);
        for now in 0..200 {
            for e in w.generate(now) {
                let (Endpoint::Core(s), Endpoint::Core(d)) = (e.src, e.dest) else {
                    continue;
                };
                assert_eq!(s / 16, d / 16, "locality 1.0 keeps traffic on-chip");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AppWorkload::new(simple_profile(), 4, 16, 4, 77);
        let mut b = AppWorkload::new(simple_profile(), 4, 16, 4, 77);
        for now in 0..500 {
            assert_eq!(a.generate(now), b.generate(now));
        }
    }

    #[test]
    fn all_shipped_profiles_validate() {
        for p in profiles::all() {
            p.validate();
            // And they can actually run.
            let mut w = AppWorkload::new(p.clone(), 4, 16, 4, 1);
            let mut total = 0;
            for now in 0..5_000 {
                total += w.generate(now).len();
            }
            assert!(total > 0, "{} generated nothing", p.name);
        }
    }

    #[test]
    fn mean_memory_fraction_is_dwell_weighted() {
        let p = simple_profile();
        // (0.5·100 + 0.1·20) / 120 = 52/120.
        assert!((p.mean_memory_fraction() - 52.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_transitions_panic() {
        let mut p = simple_profile();
        p.transitions[0] = vec![0.5, 0.2]; // does not sum to 1
        AppWorkload::new(p, 2, 2, 2, 0);
    }

    /// The fast-forward contract: walking only the cycles
    /// `next_event_at` names yields the identical event stream a
    /// cycle-by-cycle walk produces, and every skipped cycle is empty.
    #[test]
    fn skipped_walk_is_bit_identical_to_full_stepping() {
        for seed in [0u64, 5, 77, 0x5177] {
            let horizon = 20_000u64;
            let mut full = AppWorkload::new(simple_profile(), 4, 16, 4, seed);
            let mut stepped: Vec<(u64, Vec<TrafficEvent>)> = Vec::new();
            for now in 0..horizon {
                let ev = full.generate(now);
                if !ev.is_empty() {
                    stepped.push((now, ev));
                }
            }
            let mut skip = AppWorkload::new(simple_profile(), 4, 16, 4, seed);
            let mut jumped: Vec<(u64, Vec<TrafficEvent>)> = Vec::new();
            let mut now = 0u64;
            while now < horizon {
                let next = skip.next_event_at(now).expect("app promises exactness");
                assert!(next >= now, "promise moved backwards");
                if next >= horizon {
                    break;
                }
                let ev = skip.generate(next);
                if !ev.is_empty() {
                    jumped.push((next, ev));
                }
                now = next + 1;
            }
            assert_eq!(stepped, jumped, "seed {seed}: walks diverged");
            assert!(!stepped.is_empty(), "seed {seed}: nothing fired in the horizon");
        }
    }

    /// `next_event_at` is exact: nothing fires strictly before the
    /// promised cycle, and a promise that is not a phase boundary
    /// carries at least one event.
    #[test]
    fn next_event_at_is_exact() {
        let mut w = AppWorkload::new(simple_profile(), 4, 16, 4, 9);
        let mut now = 0u64;
        let mut fires = 0;
        while fires < 50 {
            let next = w.next_event_at(now).expect("exact promise");
            let mut probe = w.clone();
            for t in now..next.min(now + 5_000) {
                assert!(probe.generate(t).is_empty(), "event before the promise {next}");
            }
            let boundary = next == probe.phase_change_at;
            let ev = w.generate_through(now, next);
            if !boundary {
                assert!(!ev.is_empty(), "a promised fire cycle must carry events");
                fires += 1;
            }
            now = next + 1;
        }
    }

    /// The event-driven schedule preserves the offered load: measured
    /// packets/core/cycle in a single-phase profile match its rate.
    #[test]
    fn single_phase_rate_is_preserved() {
        let rate = 0.05;
        let mut p = simple_profile();
        p.phases.truncate(1);
        p.phases[0].injection_rate = rate;
        p.phases[0].mean_dwell_cycles = 300.0;
        p.transitions = vec![vec![1.0]];
        let mut w = AppWorkload::new(p, 4, 16, 4, 3);
        let cycles = 20_000u64;
        let mut total = 0usize;
        for now in 0..cycles {
            total += w.generate(now).len();
        }
        let measured = total as f64 / (cycles as f64 * 64.0);
        assert!(
            (measured - rate).abs() < rate * 0.05,
            "measured {measured} vs offered {rate}"
        );
    }

    impl AppWorkload {
        /// Test helper: step `generate` through `(from, to]` and return
        /// the events at `to`.
        fn generate_through(&mut self, from: u64, to: u64) -> Vec<TrafficEvent> {
            let mut ev = Vec::new();
            for t in from..=to {
                ev = self.generate(t);
            }
            ev
        }
    }
}
