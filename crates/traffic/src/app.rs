//! SynFull-substitute application traffic models.
//!
//! The paper (§IV.D) extracts PARSEC/SPLASH-2 coherence and memory
//! traffic with SynFull (ref \[20\]), which itself fits *Markov-modulated
//! generators* to full-system traces.  The trained model files are not
//! redistributable, so this module keeps SynFull's generator structure —
//! an application-wide Markov chain over execution phases, each phase a
//! stationary mix of memory reads/writes, coherence control messages and
//! data transfers — and parameterises it per application in
//! [`crate::profiles`].  The paper maps one application thread per chip
//! with all stacks shared (§IV.D); the `locality` knob reproduces that
//! split between intra-thread (on-chip) and inter-thread (cross-chip)
//! coherence.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Endpoint, MessageKind, TrafficEvent, Workload};

/// One execution phase of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPhase {
    /// Phase label (e.g. `"compute"`, `"barrier"`).
    pub name: &'static str,
    /// Packets per core per cycle offered in this phase.
    pub injection_rate: f64,
    /// Fraction of packets that are memory accesses.
    pub memory_fraction: f64,
    /// Of memory accesses, the fraction that are reads (expect replies).
    pub read_fraction: f64,
    /// Of core-to-core packets, the fraction that are short coherence
    /// control messages (the rest are cache-line data transfers).
    pub coherence_fraction: f64,
    /// Probability that a core-to-core packet stays on the source chip
    /// (intra-thread sharing).
    pub locality: f64,
    /// Mean phase dwell time in cycles (geometric).
    pub mean_dwell_cycles: f64,
}

/// A complete per-application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (PARSEC/SPLASH-2 benchmark).
    pub name: &'static str,
    /// Benchmark suite, for reports.
    pub suite: &'static str,
    /// Execution phases.
    pub phases: Vec<AppPhase>,
    /// Row-stochastic phase transition matrix (row = current phase).
    pub transitions: Vec<Vec<f64>>,
}

impl AppProfile {
    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square/row-stochastic or any phase
    /// parameter is out of range.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "{}: no phases", self.name);
        assert_eq!(
            self.transitions.len(),
            self.phases.len(),
            "{}: transition rows",
            self.name
        );
        for (i, row) in self.transitions.iter().enumerate() {
            assert_eq!(row.len(), self.phases.len(), "{}: row {i} width", self.name);
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}: row {i} sums to {sum}",
                self.name
            );
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        for p in &self.phases {
            assert!((0.0..=1.0).contains(&p.injection_rate), "{}", self.name);
            assert!((0.0..=1.0).contains(&p.memory_fraction));
            assert!((0.0..=1.0).contains(&p.read_fraction));
            assert!((0.0..=1.0).contains(&p.coherence_fraction));
            assert!((0.0..=1.0).contains(&p.locality));
            assert!(p.mean_dwell_cycles >= 1.0);
        }
    }

    /// Time-weighted mean memory fraction — the knob Fig 6's per-app
    /// variation hinges on.
    pub fn mean_memory_fraction(&self) -> f64 {
        let total_dwell: f64 = self.phases.iter().map(|p| p.mean_dwell_cycles).sum();
        self.phases
            .iter()
            .map(|p| p.memory_fraction * p.mean_dwell_cycles / total_dwell)
            .sum()
    }
}

/// Packet sizes used by the application workloads, in flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppPacketSizes {
    /// Cache-line data packet (paper: 64 flits).
    pub data_flits: u32,
    /// Short coherence / request control packet.
    pub control_flits: u32,
}

impl Default for AppPacketSizes {
    fn default() -> Self {
        AppPacketSizes { data_flits: 64, control_flits: 4 }
    }
}

/// A running application workload over a multichip system.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    profile: AppProfile,
    chips: usize,
    cores_per_chip: usize,
    stacks: usize,
    sizes: AppPacketSizes,
    rng: SmallRng,
    phase: usize,
}

impl AppWorkload {
    /// Instantiates `profile` on a system of `chips` chips ×
    /// `cores_per_chip` cores with `stacks` shared memory stacks.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation or the shape is trivial.
    pub fn new(
        profile: AppProfile,
        chips: usize,
        cores_per_chip: usize,
        stacks: usize,
        seed: u64,
    ) -> Self {
        profile.validate();
        assert!(chips > 0 && cores_per_chip > 0 && stacks > 0);
        assert!(chips * cores_per_chip >= 2);
        AppWorkload {
            profile,
            chips,
            cores_per_chip,
            stacks,
            sizes: AppPacketSizes::default(),
            rng: SmallRng::seed_from_u64(seed),
            phase: 0,
        }
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The profile driving this workload.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn total_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    fn step_phase(&mut self) {
        let dwell = self.profile.phases[self.phase].mean_dwell_cycles;
        if self.rng.gen::<f64>() < 1.0 / dwell {
            let row = &self.profile.transitions[self.phase];
            let mut draw = self.rng.gen::<f64>();
            for (next, &p) in row.iter().enumerate() {
                if draw < p {
                    self.phase = next;
                    return;
                }
                draw -= p;
            }
            self.phase = row.len() - 1;
        }
    }

    fn core_destination(&mut self, src: usize, local: bool) -> usize {
        let chip = src / self.cores_per_chip;
        if local && self.cores_per_chip > 1 {
            // Another core on the same chip.
            let base = chip * self.cores_per_chip;
            let mut d = self.rng.gen_range(0..self.cores_per_chip - 1);
            if base + d >= src {
                d += 1;
            }
            base + d
        } else if self.chips > 1 {
            // A core on a different chip.
            let mut other = self.rng.gen_range(0..self.chips - 1);
            if other >= chip {
                other += 1;
            }
            other * self.cores_per_chip + self.rng.gen_range(0..self.cores_per_chip)
        } else {
            // Single chip: fall back to any other core.
            let mut d = self.rng.gen_range(0..self.total_cores() - 1);
            if d >= src {
                d += 1;
            }
            d
        }
    }
}

impl Workload for AppWorkload {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        self.step_phase();
        let phase = self.profile.phases[self.phase].clone();
        let mut events = Vec::new();
        for core in 0..self.total_cores() {
            if self.rng.gen::<f64>() >= phase.injection_rate {
                continue;
            }
            let event = if self.rng.gen::<f64>() < phase.memory_fraction {
                let stack = self.rng.gen_range(0..self.stacks);
                if self.rng.gen::<f64>() < phase.read_fraction {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Memory(stack),
                        flits: self.sizes.control_flits,
                        kind: MessageKind::MemoryRead,
                    }
                } else {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Memory(stack),
                        flits: self.sizes.data_flits,
                        kind: MessageKind::MemoryWrite,
                    }
                }
            } else {
                let local = self.rng.gen::<f64>() < phase.locality;
                let dest = self.core_destination(core, local);
                if self.rng.gen::<f64>() < phase.coherence_fraction {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Core(dest),
                        flits: self.sizes.control_flits,
                        kind: MessageKind::Coherence,
                    }
                } else {
                    TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(core),
                        dest: Endpoint::Core(dest),
                        flits: self.sizes.data_flits,
                        kind: MessageKind::Oneway,
                    }
                }
            };
            events.push(event);
        }
        events
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.total_cores(), self.stacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn simple_profile() -> AppProfile {
        AppProfile {
            name: "test-app",
            suite: "TEST",
            phases: vec![
                AppPhase {
                    name: "compute",
                    injection_rate: 0.02,
                    memory_fraction: 0.5,
                    read_fraction: 0.8,
                    coherence_fraction: 0.5,
                    locality: 0.7,
                    mean_dwell_cycles: 100.0,
                },
                AppPhase {
                    name: "barrier",
                    injection_rate: 0.2,
                    memory_fraction: 0.1,
                    read_fraction: 0.5,
                    coherence_fraction: 0.9,
                    locality: 0.2,
                    mean_dwell_cycles: 20.0,
                },
            ],
            transitions: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        }
    }

    #[test]
    fn phases_alternate_over_time() {
        let mut w = AppWorkload::new(simple_profile(), 4, 16, 4, 5);
        let mut seen = [false; 2];
        for now in 0..5_000 {
            w.generate(now);
            seen[w.phase()] = true;
        }
        assert!(seen[0] && seen[1], "both phases must be visited");
    }

    #[test]
    fn events_respect_shape_and_kinds() {
        let mut w = AppWorkload::new(simple_profile(), 4, 16, 4, 5);
        let mut kinds = std::collections::BTreeSet::new();
        for now in 0..2_000 {
            for e in w.generate(now) {
                let Endpoint::Core(s) = e.src else { panic!("sources are cores") };
                assert!(s < 64);
                match e.dest {
                    Endpoint::Core(d) => assert!(d < 64 && d != s),
                    Endpoint::Memory(m) => assert!(m < 4),
                }
                kinds.insert(format!("{:?}", e.kind));
            }
        }
        // All four generated classes appear over 2000 cycles.
        assert!(kinds.len() >= 4, "saw {kinds:?}");
    }

    #[test]
    fn locality_splits_on_and_off_chip_traffic() {
        let mut local_profile = simple_profile();
        local_profile.phases[0].locality = 1.0;
        local_profile.phases[0].memory_fraction = 0.0;
        local_profile.phases[0].injection_rate = 0.5;
        local_profile.transitions = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        let mut w = AppWorkload::new(local_profile, 4, 16, 4, 5);
        for now in 0..200 {
            for e in w.generate(now) {
                let (Endpoint::Core(s), Endpoint::Core(d)) = (e.src, e.dest) else {
                    continue;
                };
                assert_eq!(s / 16, d / 16, "locality 1.0 keeps traffic on-chip");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AppWorkload::new(simple_profile(), 4, 16, 4, 77);
        let mut b = AppWorkload::new(simple_profile(), 4, 16, 4, 77);
        for now in 0..500 {
            assert_eq!(a.generate(now), b.generate(now));
        }
    }

    #[test]
    fn all_shipped_profiles_validate() {
        for p in profiles::all() {
            p.validate();
            // And they can actually run.
            let mut w = AppWorkload::new(p.clone(), 4, 16, 4, 1);
            let mut total = 0;
            for now in 0..1_000 {
                total += w.generate(now).len();
            }
            assert!(total > 0, "{} generated nothing", p.name);
        }
    }

    #[test]
    fn mean_memory_fraction_is_dwell_weighted() {
        let p = simple_profile();
        // (0.5·100 + 0.1·20) / 120 = 52/120.
        assert!((p.mean_memory_fraction() - 52.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_transitions_panic() {
        let mut p = simple_profile();
        p.transitions[0] = vec![0.5, 0.2]; // does not sum to 1
        AppWorkload::new(p, 2, 2, 2, 0);
    }
}
