//! Packet injection processes.
//!
//! Injection draws are **counter-based**: which cores fire at a cycle
//! is a pure function of `(seed, cycle)` (a stateless hash,
//! [`rand::counter`]), not a walk of sequential RNG state.  That is
//! what makes [`InjectionSampler::next_fire_at`] sound — the next
//! firing cycle can be computed without drawing (or skipping)
//! anything, so the simulation driver may fast-forward over quiet
//! stretches of a Bernoulli workload and still produce the
//! bit-identical event stream.
//!
//! The draw is **cycle-major**: one hash of the cycle index decides
//! how many cores fire (a Binomial(n, p) inverse-CDF lookup) and a
//! uniform subset decides which.  That factorisation is
//! distributionally identical to `n` independent Bernoulli(p) coins —
//! `K ~ Binomial(n, p)` plus a uniform `K`-subset *is* the product
//! Bernoulli law — but it prices a quiet cycle at a single mixer draw
//! instead of `n`, which is what lets `next_fire_at` scan thousands of
//! idle cycles for the cost of generating one.  See `docs/sweeps.md`
//! for the full soundness argument.

use rand::counter::{unit_f64, CounterRng, StreamKey};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cycles [`InjectionSampler::next_fire_at`] scans before giving a
/// conservative bound.  The bound is still sound (no fire happens
/// before it) and the driver simply asks again from there, so the cap
/// only limits the cost of one query at astronomically low rates.
const SCAN_HORIZON: u64 = 65_536;

/// The stream id of the cycle-major draw.  Per-core streams use the
/// core index; `u64::MAX` can never collide with one.
const CYCLE_STREAM: u64 = u64::MAX;

/// When sources create packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Each core flips an independent coin every cycle: inject with
    /// probability `rate` (packets/core/cycle) — the paper's load sweep
    /// in Fig 3 uses exactly this open-loop process.
    Bernoulli {
        /// Packets per core per cycle, in `[0, 1]`.
        rate: f64,
    },
    /// Maximum load: every core offers a packet every cycle (the
    /// saturation measurement behind "peak achievable bandwidth").
    Saturation,
}

impl InjectionProcess {
    /// The offered load in packets/core/cycle.
    pub fn offered_load(&self) -> f64 {
        match *self {
            InjectionProcess::Bernoulli { rate } => rate,
            InjectionProcess::Saturation => 1.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a Bernoulli rate lies outside `[0, 1]`.
    pub fn validate(&self) {
        if let InjectionProcess::Bernoulli { rate } = *self {
            assert!(
                (0.0..=1.0).contains(&rate),
                "injection rate {rate} outside [0, 1]"
            );
        }
    }
}

/// A compiled, seeded injection process over `cores` cores: answers
/// "who fires at cycle `t`?" and "when is the next fire ≥ `t`?" as
/// pure functions of the cycle index.
#[derive(Debug, Clone)]
pub struct InjectionSampler {
    process: InjectionProcess,
    cores: usize,
    /// The cycle-major draw stream.
    cycle_key: StreamKey,
    /// `P(no core fires)` = `(1 − rate)^cores`, the single-compare
    /// answer for a quiet cycle (1.0 for a zero rate, 0.0 for
    /// saturation).  Two f64 edge regimes are handled explicitly:
    ///
    /// * underflow to exactly `0.0` (`cores · ln(1 − rate) < ~−745`)
    ///   switches [`InjectionSampler::fires_at_into`] to a per-coin
    ///   fallback, because the Binomial pmf recurrence cannot start
    ///   from a flushed zero;
    /// * rounding to exactly `1.0` (rates below ~2⁻⁵³/cores) makes the
    ///   rate *effectively zero at f64 granularity*: the sampler
    ///   consistently reports no fires ever ([`InjectionSampler::next_fire_at`]
    ///   returns `u64::MAX` without scanning), which is within
    ///   statistical tolerance of any such rate.
    p_none: f64,
}

impl InjectionSampler {
    /// Compiles `process` for a system of `cores` cores under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or the process fails
    /// [`InjectionProcess::validate`].
    pub fn new(process: InjectionProcess, cores: usize, seed: u64) -> Self {
        assert!(cores > 0, "sampler needs at least one core");
        process.validate();
        let p_none = match process {
            InjectionProcess::Bernoulli { rate } => {
                (1.0 - rate).powi(i32::try_from(cores).expect("core count fits i32"))
            }
            InjectionProcess::Saturation => 0.0,
        };
        InjectionSampler {
            process,
            cores,
            cycle_key: StreamKey::new(seed, CYCLE_STREAM),
            p_none,
        }
    }

    /// The compiled process.
    pub fn process(&self) -> InjectionProcess {
        self.process
    }

    /// The core count the sampler draws for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// `true` if any core fires at `cycle` — one mixer draw.  In the
    /// underflow regime (`p_none == 0.0` at a positive sub-unit rate)
    /// this is unconditionally `true`: the all-quiet probability is
    /// below 2⁻¹⁰⁷⁴, unobservable in any run, and "may fire" is the
    /// sound direction for the fast-forward contract.
    #[inline]
    pub fn any_fire_at(&self, cycle: u64) -> bool {
        match self.process {
            InjectionProcess::Saturation => true,
            InjectionProcess::Bernoulli { rate } => {
                rate > 0.0
                    && self.p_none < 1.0
                    && (self.p_none == 0.0
                        || unit_f64(self.cycle_key.draw0(cycle)) >= self.p_none)
            }
        }
    }

    /// The cores firing at `cycle`, pushed onto `out` in increasing
    /// order (`out` is cleared first).  A pure function of the cycle
    /// index: querying any subset of cycles in any order yields the
    /// same sets.
    pub fn fires_at_into(&self, cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        match self.process {
            InjectionProcess::Saturation => out.extend(0..self.cores),
            InjectionProcess::Bernoulli { rate } => {
                if rate <= 0.0 {
                    return;
                }
                if rate >= 1.0 {
                    out.extend(0..self.cores);
                    return;
                }
                let mut rng = self.cycle_key.rng(cycle);
                if self.p_none == 0.0 {
                    // Underflow fallback: `(1−p)^n` is not representable,
                    // so the pmf recurrence cannot start.  Flip the n
                    // coins directly on the cycle stream — O(n), but this
                    // regime (n·ln(1−p) < −745) is saturation-adjacent:
                    // fires happen every cycle and scans never run long.
                    for core in 0..self.cores {
                        if rng.gen::<f64>() < rate {
                            out.push(core);
                        }
                    }
                    return;
                }
                // Draw 0 is the same word `any_fire_at` tests: the
                // count comes from inverting the Binomial CDF at it, so
                // `u < p_none  ⟺  k = 0` and the two answers agree.
                let u: f64 = rng.gen();
                if u < self.p_none {
                    return;
                }
                let k = self.binomial_inverse_cdf(u);
                self.uniform_subset(k, &mut rng, out);
            }
        }
    }

    /// Inverts the Binomial(cores, rate) CDF at `u` by walking the pmf
    /// recurrence `pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)` from
    /// `pmf(0) = (1−p)^n`.  O(k) — and `k` is the number of events the
    /// caller must materialise anyway.
    fn binomial_inverse_cdf(&self, u: f64) -> usize {
        let InjectionProcess::Bernoulli { rate } = self.process else {
            unreachable!("only Bernoulli draws a count");
        };
        let n = self.cores;
        let ratio = rate / (1.0 - rate);
        let mut pmf = self.p_none;
        let mut cdf = pmf;
        let mut k = 0usize;
        while u >= cdf && k < n {
            pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
            cdf += pmf;
            k += 1;
        }
        // Floating-point tail: if rounding kept `cdf` below `u`, every
        // core fired.
        k
    }

    /// Uniform `k`-subset of `0..cores`, sorted ascending into `out`.
    ///
    /// Sparse sets (`k² ≤ cores`) use Floyd's algorithm — `k` draws,
    /// with the membership probe bounded by `k ≤ √cores`.  Dense sets
    /// use Knuth's selection sampling (Algorithm S) — one draw per
    /// candidate index, O(cores) total, instead of Floyd's O(k²)
    /// linear-scan probes.  Both are exactly uniform; which one runs is
    /// a deterministic function of `k`, so the draw stream stays a pure
    /// function of the cycle.
    fn uniform_subset(&self, k: usize, rng: &mut CounterRng, out: &mut Vec<usize>) {
        debug_assert!(k <= self.cores);
        if k == self.cores {
            out.extend(0..self.cores);
            return;
        }
        if k.saturating_mul(k) <= self.cores {
            for j in (self.cores - k)..self.cores {
                let t = rng.gen_range(0..j + 1);
                if out.contains(&t) {
                    out.push(j);
                } else {
                    out.push(t);
                }
            }
            out.sort_unstable();
        } else {
            let mut need = k;
            for i in 0..self.cores {
                if need == 0 {
                    break;
                }
                let remaining = (self.cores - i) as f64;
                if rng.gen::<f64>() * remaining < need as f64 {
                    out.push(i);
                    need -= 1;
                }
            }
        }
    }

    /// The earliest cycle `>= from` at which any core fires, or a
    /// sound conservative bound: the returned cycle `c` guarantees no
    /// core fires in `[from, c)`, though `c` itself may be quiet when
    /// the scan horizon was reached (callers re-query from there).
    /// `u64::MAX` means "never" (zero rate).  One mixer draw per
    /// scanned cycle.
    pub fn next_fire_at(&self, from: u64) -> u64 {
        match self.process {
            InjectionProcess::Saturation => from,
            InjectionProcess::Bernoulli { rate } => {
                if rate <= 0.0 || self.p_none >= 1.0 {
                    // Zero — or effectively zero at f64 granularity
                    // (p_none rounded to 1.0): nothing ever fires, so
                    // don't burn scan cycles proving it.
                    return u64::MAX;
                }
                let horizon = from.saturating_add(SCAN_HORIZON);
                let mut cycle = from;
                while cycle < horizon {
                    if self.any_fire_at(cycle) {
                        return cycle;
                    }
                    cycle += 1;
                }
                horizon
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fires(s: &InjectionSampler, cycle: u64) -> Vec<usize> {
        let mut v = Vec::new();
        s.fires_at_into(cycle, &mut v);
        v
    }

    #[test]
    fn bernoulli_rate_is_respected_statistically() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.3 }, 16, 7);
        let cycles = 20_000u64;
        let total: usize = (0..cycles).map(|t| fires(&s, t).len()).sum();
        let rate = total as f64 / (cycles as f64 * 16.0);
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn saturation_always_fires_everyone() {
        let s = InjectionSampler::new(InjectionProcess::Saturation, 8, 7);
        for t in 0..50 {
            assert_eq!(fires(&s, t), (0..8).collect::<Vec<_>>());
            assert!(s.any_fire_at(t));
        }
        assert_eq!(s.next_fire_at(123), 123);
        assert_eq!(s.process().offered_load(), 1.0);
    }

    #[test]
    fn zero_rate_never_fires() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.0 }, 8, 7);
        assert!((0..100u64).all(|t| fires(&s, t).is_empty() && !s.any_fire_at(t)));
        assert_eq!(s.next_fire_at(0), u64::MAX);
    }

    #[test]
    fn unit_rate_fires_everyone() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1.0 }, 8, 7);
        assert_eq!(fires(&s, 3), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fire_sets_are_sorted_unique_and_in_range() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.4 }, 24, 9);
        for t in 0..2_000 {
            let f = fires(&s, t);
            assert!(f.windows(2).all(|w| w[0] < w[1]), "sorted unique: {f:?}");
            assert!(f.iter().all(|&c| c < 24));
        }
    }

    #[test]
    fn any_fire_agrees_with_the_fire_set() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.05 }, 16, 11);
        for t in 0..5_000 {
            assert_eq!(s.any_fire_at(t), !fires(&s, t).is_empty(), "cycle {t}");
        }
    }

    #[test]
    fn fires_are_independent_of_query_order() {
        // The counter-based property: answers do not depend on which
        // other cycles were queried, or in what order.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.2 }, 8, 9);
        let forward: Vec<Vec<usize>> = (0..500u64).map(|t| fires(&s, t)).collect();
        let backward: Vec<Vec<usize>> =
            (0..500u64).rev().map(|t| fires(&s, t)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn next_fire_at_matches_brute_force() {
        for seed in [0u64, 1, 0x5177, u64::MAX] {
            let s =
                InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.01 }, 8, seed);
            let mut from = 0u64;
            for _ in 0..20 {
                let next = s.next_fire_at(from);
                // Nothing fires strictly before `next`.
                for t in from..next.min(from + 10_000) {
                    assert!(
                        fires(&s, t).is_empty(),
                        "seed {seed}: fire before the promised cycle {next}"
                    );
                }
                // And (within the horizon) something fires *at* it.
                if next < from + SCAN_HORIZON {
                    assert!(!fires(&s, next).is_empty());
                }
                from = next + 1;
            }
        }
    }

    #[test]
    fn next_fire_at_caps_the_scan_at_the_horizon() {
        // 1e-9 is representable ((1−p)^1 < 1.0) but far too rare to
        // fire inside one horizon with this seed.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1e-9 }, 1, 1);
        assert_eq!(s.next_fire_at(100), 100 + SCAN_HORIZON);
    }

    #[test]
    fn effectively_zero_rates_report_never_without_scanning() {
        // Below ~2⁻⁵³/cores, (1−rate)^cores rounds to exactly 1.0: the
        // rate is zero at f64 granularity, and the sampler must say so
        // consistently (no fires, no horizon-long scans).
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1e-18 }, 1, 1);
        assert_eq!(s.next_fire_at(100), u64::MAX);
        assert!((0..1000u64).all(|t| !s.any_fire_at(t) && fires(&s, t).is_empty()));
    }

    #[test]
    fn underflow_regime_still_samples_bernoulli_per_core() {
        // (1 − 0.99)^160 underflows f64 to exactly 0.0; the sampler
        // must fall back to per-coin draws, not fire all cores always.
        let (n, p) = (160usize, 0.99f64);
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: p }, n, 3);
        let cycles = 3_000u64;
        let counts: Vec<f64> = (0..cycles).map(|t| fires(&s, t).len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / cycles as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / cycles as f64;
        let expect_mean = n as f64 * p; // 158.4
        assert!((mean - expect_mean).abs() < 0.2, "mean {mean} vs {expect_mean}");
        assert!(var > 0.5, "count variance collapsed: {var}");
        // A balanced rate on a huge system (0.5^2048 == 0.0) too.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.5 }, 2048, 3);
        let mean = (0..200u64).map(|t| fires(&s, t).len() as f64).sum::<f64>() / 200.0;
        assert!((mean - 1024.0).abs() < 15.0, "mean {mean} vs 1024");
        assert!(s.any_fire_at(0), "any_fire_at stays sound in the fallback regime");
    }

    #[test]
    fn binomial_count_matches_the_binomial_law() {
        // Mean n·p and variance n·p·(1−p) of the per-cycle fire count.
        let (n, p) = (32usize, 0.25f64);
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: p }, n, 5);
        let cycles = 20_000u64;
        let counts: Vec<f64> = (0..cycles).map(|t| fires(&s, t).len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / cycles as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / cycles as f64;
        let expect_mean = n as f64 * p;
        let expect_var = n as f64 * p * (1.0 - p);
        assert!((mean - expect_mean).abs() < 0.1, "mean {mean} vs {expect_mean}");
        assert!(
            (var - expect_var).abs() < expect_var * 0.05,
            "var {var} vs {expect_var}"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_panics() {
        InjectionProcess::Bernoulli { rate: 1.5 }.validate();
    }
}
