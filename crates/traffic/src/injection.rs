//! Packet injection processes.
//!
//! Injection draws are **counter-based**: which cores fire at a cycle
//! is a pure function of `(seed, cycle)` (a stateless hash,
//! [`rand::counter`]), not a walk of sequential RNG state.  That is
//! what makes [`InjectionSampler::next_fire_at`] sound — the next
//! firing cycle can be computed without drawing (or skipping)
//! anything, so the simulation driver may fast-forward over quiet
//! stretches of a Bernoulli workload and still produce the
//! bit-identical event stream.
//!
//! The draw is **cycle-major**: one hash of the cycle index decides
//! how many cores fire (a Binomial(n, p) inverse-CDF lookup) and a
//! uniform subset decides which.  That factorisation is
//! distributionally identical to `n` independent Bernoulli(p) coins —
//! `K ~ Binomial(n, p)` plus a uniform `K`-subset *is* the product
//! Bernoulli law — but it prices a quiet cycle at a single mixer draw
//! instead of `n`, which is what lets `next_fire_at` scan thousands of
//! idle cycles for the cost of generating one.  See `docs/sweeps.md`
//! for the full soundness argument.

use rand::counter::{unit_f64, CounterRng, StreamKey};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cycles [`InjectionSampler::next_fire_at`] scans before giving a
/// conservative bound.  The bound is still sound (no fire happens
/// before it) and the driver simply asks again from there, so the cap
/// only limits the cost of one query at astronomically low rates.
const SCAN_HORIZON: u64 = 65_536;

/// The stream id of the cycle-major draw.  Per-core streams use the
/// core index; `u64::MAX` can never collide with one.
const CYCLE_STREAM: u64 = u64::MAX;

/// The stream id of the event-indexed geometric-gap draw
/// ([`GeometricGaps`]); distinct from every per-core stream and from
/// [`CYCLE_STREAM`].
const GEOMETRIC_STREAM: u64 = u64::MAX - 1;

/// When sources create packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Each core flips an independent coin every cycle: inject with
    /// probability `rate` (packets/core/cycle) — the paper's load sweep
    /// in Fig 3 uses exactly this open-loop process.
    Bernoulli {
        /// Packets per core per cycle, in `[0, 1]`.
        rate: f64,
    },
    /// Maximum load: every core offers a packet every cycle (the
    /// saturation measurement behind "peak achievable bandwidth").
    Saturation,
}

impl InjectionProcess {
    /// The offered load in packets/core/cycle.
    pub fn offered_load(&self) -> f64 {
        match *self {
            InjectionProcess::Bernoulli { rate } => rate,
            InjectionProcess::Saturation => 1.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a Bernoulli rate lies outside `[0, 1]`.
    pub fn validate(&self) {
        if let InjectionProcess::Bernoulli { rate } = *self {
            assert!(
                (0.0..=1.0).contains(&rate),
                "injection rate {rate} outside [0, 1]"
            );
        }
    }
}

/// A compiled, seeded injection process over `cores` cores: answers
/// "who fires at cycle `t`?" and "when is the next fire ≥ `t`?" as
/// pure functions of the cycle index.
#[derive(Debug, Clone)]
pub struct InjectionSampler {
    process: InjectionProcess,
    cores: usize,
    /// The cycle-major draw stream.
    cycle_key: StreamKey,
    /// `P(no core fires)` = `(1 − rate)^cores`, the single-compare
    /// answer for a quiet cycle (1.0 for a zero rate, 0.0 for
    /// saturation).  Two f64 edge regimes are handled explicitly:
    ///
    /// * underflow to exactly `0.0` (`cores · ln(1 − rate) < ~−745`)
    ///   switches [`InjectionSampler::fires_at_into`] to a per-coin
    ///   fallback, because the Binomial pmf recurrence cannot start
    ///   from a flushed zero;
    /// * rounding to exactly `1.0` (rates below ~2⁻⁵³/cores) makes the
    ///   rate *effectively zero at f64 granularity*: the sampler
    ///   consistently reports no fires ever ([`InjectionSampler::next_fire_at`]
    ///   returns `u64::MAX` without scanning), which is within
    ///   statistical tolerance of any such rate.
    p_none: f64,
}

impl InjectionSampler {
    /// Compiles `process` for a system of `cores` cores under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or the process fails
    /// [`InjectionProcess::validate`].
    pub fn new(process: InjectionProcess, cores: usize, seed: u64) -> Self {
        assert!(cores > 0, "sampler needs at least one core");
        process.validate();
        let p_none = match process {
            InjectionProcess::Bernoulli { rate } => p_none_of(cores, rate),
            InjectionProcess::Saturation => 0.0,
        };
        InjectionSampler {
            process,
            cores,
            cycle_key: StreamKey::new(seed, CYCLE_STREAM),
            p_none,
        }
    }

    /// The compiled process.
    pub fn process(&self) -> InjectionProcess {
        self.process
    }

    /// The core count the sampler draws for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// `true` if any core fires at `cycle` — one mixer draw.  In the
    /// underflow regime (`p_none == 0.0` at a positive sub-unit rate)
    /// this is unconditionally `true`: the all-quiet probability is
    /// below 2⁻¹⁰⁷⁴, unobservable in any run, and "may fire" is the
    /// sound direction for the fast-forward contract.
    #[inline]
    pub fn any_fire_at(&self, cycle: u64) -> bool {
        match self.process {
            InjectionProcess::Saturation => true,
            InjectionProcess::Bernoulli { rate } => {
                rate > 0.0
                    && self.p_none < 1.0
                    && (self.p_none == 0.0
                        || unit_f64(self.cycle_key.draw0(cycle)) >= self.p_none)
            }
        }
    }

    /// The cores firing at `cycle`, pushed onto `out` in increasing
    /// order (`out` is cleared first).  A pure function of the cycle
    /// index: querying any subset of cycles in any order yields the
    /// same sets.
    pub fn fires_at_into(&self, cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        match self.process {
            InjectionProcess::Saturation => out.extend(0..self.cores),
            InjectionProcess::Bernoulli { rate } => {
                if rate <= 0.0 {
                    return;
                }
                if rate >= 1.0 {
                    out.extend(0..self.cores);
                    return;
                }
                let mut rng = self.cycle_key.rng(cycle);
                if self.p_none == 0.0 {
                    // Underflow fallback: `(1−p)^n` is not representable,
                    // so the pmf recurrence cannot start.  Flip the n
                    // coins directly on the cycle stream — O(n), but this
                    // regime (n·ln(1−p) < −745) is saturation-adjacent:
                    // fires happen every cycle and scans never run long.
                    for core in 0..self.cores {
                        if rng.gen::<f64>() < rate {
                            out.push(core);
                        }
                    }
                    return;
                }
                // Draw 0 is the same word `any_fire_at` tests: the
                // count comes from inverting the Binomial CDF at it, so
                // `u < p_none  ⟺  k = 0` and the two answers agree.
                let u: f64 = rng.gen();
                if u < self.p_none {
                    return;
                }
                let k = self.binomial_inverse_cdf(u);
                self.uniform_subset(k, &mut rng, out);
            }
        }
    }

    /// Inverts the Binomial(cores, rate) CDF at `u`; see
    /// [`binomial_inverse_cdf`].
    fn binomial_inverse_cdf(&self, u: f64) -> usize {
        let InjectionProcess::Bernoulli { rate } = self.process else {
            unreachable!("only Bernoulli draws a count");
        };
        binomial_inverse_cdf(self.cores, rate, self.p_none, u)
    }

    /// Uniform `k`-subset of `0..cores`; see [`uniform_subset`].
    fn uniform_subset(&self, k: usize, rng: &mut CounterRng, out: &mut Vec<usize>) {
        uniform_subset(self.cores, k, rng, out);
    }

    /// The earliest cycle `>= from` at which any core fires, or a
    /// sound conservative bound: the returned cycle `c` guarantees no
    /// core fires in `[from, c)`, though `c` itself may be quiet when
    /// the scan horizon was reached (callers re-query from there).
    /// `u64::MAX` means "never" (zero rate).  One mixer draw per
    /// scanned cycle.
    pub fn next_fire_at(&self, from: u64) -> u64 {
        match self.process {
            InjectionProcess::Saturation => from,
            InjectionProcess::Bernoulli { rate } => {
                if rate <= 0.0 || self.p_none >= 1.0 {
                    // Zero — or effectively zero at f64 granularity
                    // (p_none rounded to 1.0): nothing ever fires, so
                    // don't burn scan cycles proving it.
                    return u64::MAX;
                }
                let horizon = from.saturating_add(SCAN_HORIZON);
                let mut cycle = from;
                while cycle < horizon {
                    if self.any_fire_at(cycle) {
                        return cycle;
                    }
                    cycle += 1;
                }
                horizon
            }
        }
    }
}

/// `P(no core fires)` for `n` independent Bernoulli(`rate`) coins —
/// `(1 − rate)^n`, with the same f64 edge regimes the sampler handles
/// (exact `0.0` on underflow, exact `1.0` for effectively-zero rates).
pub(crate) fn p_none_of(n: usize, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 1.0;
    }
    if rate >= 1.0 {
        return 0.0;
    }
    (1.0 - rate).powi(i32::try_from(n).expect("core count fits i32"))
}

/// Inverts the Binomial(`n`, `rate`) CDF at `u` by walking the pmf
/// recurrence `pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)` from
/// `pmf(0) = (1−p)^n` (passed in as `p_none`).  O(k) — and `k` is the
/// number of events the caller must materialise anyway.
pub(crate) fn binomial_inverse_cdf(n: usize, rate: f64, p_none: f64, u: f64) -> usize {
    let ratio = rate / (1.0 - rate);
    let mut pmf = p_none;
    let mut cdf = pmf;
    let mut k = 0usize;
    while u >= cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
        cdf += pmf;
        k += 1;
    }
    // Floating-point tail: if rounding kept `cdf` below `u`, every
    // core fired.
    k
}

/// Uniform `k`-subset of `0..n`, sorted ascending into `out` (which is
/// *not* cleared: callers compose).
///
/// Sparse sets (`k² ≤ n`) use Floyd's algorithm — `k` draws, with the
/// membership probe bounded by `k ≤ √n`.  Dense sets use Knuth's
/// selection sampling (Algorithm S) — one draw per candidate index,
/// O(n) total, instead of Floyd's O(k²) linear-scan probes.  Both are
/// exactly uniform; which one runs is a deterministic function of `k`,
/// so the draw stream stays a pure function of the caller's index.
pub(crate) fn uniform_subset(n: usize, k: usize, rng: &mut CounterRng, out: &mut Vec<usize>) {
    debug_assert!(k <= n);
    if k == n {
        out.extend(0..n);
        return;
    }
    if k.saturating_mul(k) <= n {
        for j in (n - k)..n {
            let t = rng.gen_range(0..j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        out.sort_unstable();
    } else {
        let mut need = k;
        for i in 0..n {
            if need == 0 {
                break;
            }
            let remaining = (n - i) as f64;
            if rng.gen::<f64>() * remaining < need as f64 {
                out.push(i);
                need -= 1;
            }
        }
    }
}

/// The firing subset of `0..n` cores **conditioned on at least one
/// fire**, sorted ascending into `out` (cleared first).
///
/// This is the per-fire-cycle companion of [`GeometricGaps`]: the gap
/// process realises *when* some core fires (the `1 − (1 − rate)^n`
/// any-fire law), and this draw realises *who*, from the Binomial
/// count distribution truncated at `k ≥ 1` plus a uniform `k`-subset —
/// together exactly the product-Bernoulli law conditioned on a
/// non-empty cycle.  The truncation maps a uniform draw onto
/// `[p_none, 1)` before inverting the CDF, so `k = 0` is unreachable.
///
/// In the underflow regime (`(1 − rate)^n` flushes to `0.0`) the count
/// recurrence cannot start; the fallback flips the `n` coins directly
/// and, in the `< 2⁻¹⁰⁰⁰` event that all miss, fires one uniform core
/// so the "fire cycles carry events" invariant holds.
pub(crate) fn conditional_fires(
    n: usize,
    rate: f64,
    rng: &mut CounterRng,
    out: &mut Vec<usize>,
) {
    out.clear();
    debug_assert!(rate > 0.0, "a fire cycle needs a positive rate");
    if rate >= 1.0 {
        out.extend(0..n);
        return;
    }
    let p_none = p_none_of(n, rate);
    if p_none == 0.0 {
        for core in 0..n {
            if rng.gen::<f64>() < rate {
                out.push(core);
            }
        }
        if out.is_empty() {
            out.push(rng.gen_range(0..n));
        }
        return;
    }
    let u = p_none + rng.gen::<f64>() * (1.0 - p_none);
    let k = binomial_inverse_cdf(n, rate, p_none, u).max(1);
    uniform_subset(n, k, rng, out);
}

/// Gaps this far out are reported as "never" ([`u64::MAX`]); beyond any
/// simulated horizon, and keeps the cursor arithmetic overflow-free.
const GAP_NEVER: f64 = 9.2e18; // ~2^63

/// An event-indexed geometric-gap fire process: the O(1)-per-event
/// counterpart of scanning i.i.d. Bernoulli coins cycle by cycle.
///
/// The process fires at cycles `t_1 < t_2 < …` where the gaps
/// `t_{k+1} − t_k` are i.i.d. geometric with per-cycle fire probability
/// `p` — exactly the gap law of a Bernoulli(p) coin per cycle — and
/// each gap is a pure function of `(seed, event ordinal)` via the
/// counter RNG, so the whole event stream is reproducible and
/// independent of how it is consumed.
///
/// [`GeometricGaps::next_fire`] produces each event with **one** mixer
/// draw and one `ln`, whatever the gap length; a cycle-stepping driver
/// can consume the identical stream through [`GeometricGapStepper`]
/// (one bool per cycle).  `tests` prove the two walks bit-identical —
/// the same jump-equals-step contract the engine's idle fast-forward
/// keeps.
///
/// **Relation to [`InjectionSampler`]:** the cycle-major sampler keys
/// its coin at cycle `t` by a *hash of `t`*, which gives O(1) random
/// access (`any_fire_at`) but makes first-passage queries
/// (`next_fire_at`) cost one draw per scanned cycle — hash outputs at
/// distinct cycles are independent, so no scan can be skipped.  This
/// process keys the *gap* by event ordinal instead: first-passage is
/// O(1), random access is not.  The two constructions realise the same
/// law from opposite ends; pick by access pattern.  Because their
/// realisations differ, `GeometricGaps` is additive API — the default
/// workloads keep the cycle-major sampler and their fingerprints.
#[derive(Debug, Clone)]
pub struct GeometricGaps {
    key: StreamKey,
    /// Per-cycle quiet probability `1 − p`.
    p_quiet: f64,
    ln_quiet: f64,
    /// Next gap ordinal to draw.
    event: u64,
    /// The earliest cycle the next fire may land on.
    cursor: u64,
}

impl GeometricGaps {
    /// A geometric-gap process with per-cycle fire probability
    /// `p_fire`, first eligible cycle `start`, on `seed`'s dedicated
    /// gap stream.
    ///
    /// # Panics
    ///
    /// Panics if `p_fire` lies outside `[0, 1]`.
    pub fn new(seed: u64, p_fire: f64, start: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_fire),
            "fire probability {p_fire} outside [0, 1]"
        );
        let p_quiet = 1.0 - p_fire;
        GeometricGaps {
            key: StreamKey::new(seed, GEOMETRIC_STREAM),
            p_quiet,
            ln_quiet: p_quiet.ln(),
            event: 0,
            cursor: start,
        }
    }

    /// The process whose events occur (in law) whenever *any* core of
    /// `sampler` fires — per-cycle fire probability
    /// `1 − (1 − rate)^cores`.
    pub fn any_fire_of(sampler: &InjectionSampler, seed: u64, start: u64) -> Self {
        GeometricGaps::new(seed, 1.0 - sampler.p_none, start)
    }

    /// The gap (≥ 1 cycle) encoded by event ordinal `k`: the geometric
    /// inverse CDF at that ordinal's uniform draw, `u64::MAX` for
    /// "never" (gaps beyond ~2⁶³ cycles, or a zero fire probability).
    /// A pure function of `(seed, k)` — one mixer draw, one `ln`.
    fn gap(&self, k: u64) -> u64 {
        if self.p_quiet >= 1.0 {
            return u64::MAX; // zero rate: nothing ever fires
        }
        if self.p_quiet <= 0.0 {
            return 1; // unit rate: every cycle fires
        }
        let u = unit_f64(self.key.draw0(k));
        // 1 − u is uniform on (0, 1], so the log is finite and ≤ 0;
        // P(gap > m) = P(1 − u < q^m) = q^m — the geometric law of a
        // Bernoulli(1 − q) coin per cycle.
        let x = (1.0 - u).ln() / self.ln_quiet;
        if !x.is_finite() || x >= GAP_NEVER {
            return u64::MAX;
        }
        let k = x.ceil();
        if k < 1.0 {
            1
        } else {
            k as u64
        }
    }

    /// The next fire cycle, or `u64::MAX` when the process never fires
    /// again within any representable horizon.  O(1) per call.
    pub fn next_fire(&mut self) -> u64 {
        let gap = self.gap(self.event);
        if gap == u64::MAX || self.cursor.checked_add(gap - 1).is_none() {
            // Park the cursor; every later call keeps answering "never"
            // without consuming further events.
            return u64::MAX;
        }
        self.event += 1;
        let fire = self.cursor + (gap - 1);
        self.cursor = fire + 1;
        fire
    }

    /// A cycle-stepping walker over the identical event stream,
    /// starting from this process's current position.
    pub fn stepper(&self) -> GeometricGapStepper {
        GeometricGapStepper { gaps: self.clone(), countdown: 0, exhausted: false }
    }
}

/// Cycle-by-cycle consumer of a [`GeometricGaps`] stream: `step()` is
/// called once per cycle and answers "does the process fire now?".
///
/// This is the reference "scan" implementation the O(1) iterator is
/// tested against: stepping N cycles visits the exact fire cycles
/// [`GeometricGaps::next_fire`] jumps to.
#[derive(Debug, Clone)]
pub struct GeometricGapStepper {
    gaps: GeometricGaps,
    /// Cycles left until the pending fire (0 = no gap drawn yet).
    countdown: u64,
    /// `true` once a gap came back "never".
    exhausted: bool,
}

impl GeometricGapStepper {
    /// Advances one cycle; `true` when the process fires on it.
    pub fn step(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.countdown == 0 {
            let gap = self.gaps.gap(self.gaps.event);
            if gap == u64::MAX {
                self.exhausted = true;
                return false;
            }
            self.gaps.event += 1;
            self.countdown = gap;
        }
        self.countdown -= 1;
        self.countdown == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fires(s: &InjectionSampler, cycle: u64) -> Vec<usize> {
        let mut v = Vec::new();
        s.fires_at_into(cycle, &mut v);
        v
    }

    #[test]
    fn bernoulli_rate_is_respected_statistically() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.3 }, 16, 7);
        let cycles = 20_000u64;
        let total: usize = (0..cycles).map(|t| fires(&s, t).len()).sum();
        let rate = total as f64 / (cycles as f64 * 16.0);
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn saturation_always_fires_everyone() {
        let s = InjectionSampler::new(InjectionProcess::Saturation, 8, 7);
        for t in 0..50 {
            assert_eq!(fires(&s, t), (0..8).collect::<Vec<_>>());
            assert!(s.any_fire_at(t));
        }
        assert_eq!(s.next_fire_at(123), 123);
        assert_eq!(s.process().offered_load(), 1.0);
    }

    #[test]
    fn zero_rate_never_fires() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.0 }, 8, 7);
        assert!((0..100u64).all(|t| fires(&s, t).is_empty() && !s.any_fire_at(t)));
        assert_eq!(s.next_fire_at(0), u64::MAX);
    }

    #[test]
    fn unit_rate_fires_everyone() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1.0 }, 8, 7);
        assert_eq!(fires(&s, 3), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fire_sets_are_sorted_unique_and_in_range() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.4 }, 24, 9);
        for t in 0..2_000 {
            let f = fires(&s, t);
            assert!(f.windows(2).all(|w| w[0] < w[1]), "sorted unique: {f:?}");
            assert!(f.iter().all(|&c| c < 24));
        }
    }

    #[test]
    fn any_fire_agrees_with_the_fire_set() {
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.05 }, 16, 11);
        for t in 0..5_000 {
            assert_eq!(s.any_fire_at(t), !fires(&s, t).is_empty(), "cycle {t}");
        }
    }

    #[test]
    fn fires_are_independent_of_query_order() {
        // The counter-based property: answers do not depend on which
        // other cycles were queried, or in what order.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.2 }, 8, 9);
        let forward: Vec<Vec<usize>> = (0..500u64).map(|t| fires(&s, t)).collect();
        let backward: Vec<Vec<usize>> =
            (0..500u64).rev().map(|t| fires(&s, t)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn next_fire_at_matches_brute_force() {
        for seed in [0u64, 1, 0x5177, u64::MAX] {
            let s =
                InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.01 }, 8, seed);
            let mut from = 0u64;
            for _ in 0..20 {
                let next = s.next_fire_at(from);
                // Nothing fires strictly before `next`.
                for t in from..next.min(from + 10_000) {
                    assert!(
                        fires(&s, t).is_empty(),
                        "seed {seed}: fire before the promised cycle {next}"
                    );
                }
                // And (within the horizon) something fires *at* it.
                if next < from + SCAN_HORIZON {
                    assert!(!fires(&s, next).is_empty());
                }
                from = next + 1;
            }
        }
    }

    #[test]
    fn next_fire_at_caps_the_scan_at_the_horizon() {
        // 1e-9 is representable ((1−p)^1 < 1.0) but far too rare to
        // fire inside one horizon with this seed.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1e-9 }, 1, 1);
        assert_eq!(s.next_fire_at(100), 100 + SCAN_HORIZON);
    }

    #[test]
    fn effectively_zero_rates_report_never_without_scanning() {
        // Below ~2⁻⁵³/cores, (1−rate)^cores rounds to exactly 1.0: the
        // rate is zero at f64 granularity, and the sampler must say so
        // consistently (no fires, no horizon-long scans).
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 1e-18 }, 1, 1);
        assert_eq!(s.next_fire_at(100), u64::MAX);
        assert!((0..1000u64).all(|t| !s.any_fire_at(t) && fires(&s, t).is_empty()));
    }

    #[test]
    fn underflow_regime_still_samples_bernoulli_per_core() {
        // (1 − 0.99)^160 underflows f64 to exactly 0.0; the sampler
        // must fall back to per-coin draws, not fire all cores always.
        let (n, p) = (160usize, 0.99f64);
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: p }, n, 3);
        let cycles = 3_000u64;
        let counts: Vec<f64> = (0..cycles).map(|t| fires(&s, t).len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / cycles as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / cycles as f64;
        let expect_mean = n as f64 * p; // 158.4
        assert!((mean - expect_mean).abs() < 0.2, "mean {mean} vs {expect_mean}");
        assert!(var > 0.5, "count variance collapsed: {var}");
        // A balanced rate on a huge system (0.5^2048 == 0.0) too.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.5 }, 2048, 3);
        let mean = (0..200u64).map(|t| fires(&s, t).len() as f64).sum::<f64>() / 200.0;
        assert!((mean - 1024.0).abs() < 15.0, "mean {mean} vs 1024");
        assert!(s.any_fire_at(0), "any_fire_at stays sound in the fallback regime");
    }

    #[test]
    fn binomial_count_matches_the_binomial_law() {
        // Mean n·p and variance n·p·(1−p) of the per-cycle fire count.
        let (n, p) = (32usize, 0.25f64);
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: p }, n, 5);
        let cycles = 20_000u64;
        let counts: Vec<f64> = (0..cycles).map(|t| fires(&s, t).len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / cycles as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / cycles as f64;
        let expect_mean = n as f64 * p;
        let expect_var = n as f64 * p * (1.0 - p);
        assert!((mean - expect_mean).abs() < 0.1, "mean {mean} vs {expect_mean}");
        assert!(
            (var - expect_var).abs() < expect_var * 0.05,
            "var {var} vs {expect_var}"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_panics() {
        InjectionProcess::Bernoulli { rate: 1.5 }.validate();
    }

    // --- geometric-gap event iterator -------------------------------

    /// The satellite contract: the O(1)-per-event jump walk and the
    /// one-bool-per-cycle scan walk visit bit-identical fire cycles.
    #[test]
    fn geometric_jumps_are_bit_identical_to_the_cycle_scan() {
        for (seed, p, start) in [
            (0u64, 0.5f64, 0u64),
            (7, 0.01, 3),
            (0x5177, 0.2, 1_000),
            (u64::MAX, 0.003, 17),
        ] {
            let mut jump = GeometricGaps::new(seed, p, start);
            let mut step = jump.stepper();
            let horizon = 200_000u64;
            let scanned: Vec<u64> = (start..start + horizon)
                .filter(|_| step.step())
                .collect();
            assert!(!scanned.is_empty(), "seed {seed}: no fires in the horizon");
            let mut jumped = Vec::with_capacity(scanned.len());
            while jumped.len() < scanned.len() {
                let f = jump.next_fire();
                assert!(f < start + horizon, "jump left the scanned window");
                jumped.push(f);
            }
            assert_eq!(jumped, scanned, "seed {seed}, p {p}: walks diverged");
        }
    }

    #[test]
    fn geometric_gap_law_matches_bernoulli_coins() {
        // Mean gap 1/p and the memoryless variance (1 − p)/p².
        let p = 0.05f64;
        let mut g = GeometricGaps::new(11, p, 0);
        let n = 50_000usize;
        let mut prev = None;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let f = g.next_fire();
            if let Some(q) = prev {
                gaps.push((f - q) as f64);
            }
            prev = Some(f);
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / gaps.len() as f64;
        assert!((mean - 1.0 / p).abs() < 0.25, "mean gap {mean} vs {}", 1.0 / p);
        let expect_var = (1.0 - p) / (p * p);
        assert!(
            (var - expect_var).abs() < expect_var * 0.05,
            "gap variance {var} vs {expect_var}"
        );
    }

    #[test]
    fn geometric_edge_rates() {
        // Unit rate: every cycle fires, starting exactly at `start`.
        let mut g = GeometricGaps::new(3, 1.0, 42);
        assert_eq!(g.next_fire(), 42);
        assert_eq!(g.next_fire(), 43);
        // Zero rate: never fires, repeatedly.
        let mut g = GeometricGaps::new(3, 0.0, 0);
        assert_eq!(g.next_fire(), u64::MAX);
        assert_eq!(g.next_fire(), u64::MAX);
        let mut s = g.stepper();
        assert!((0..100).all(|_| !s.step()));
    }

    #[test]
    fn geometric_stream_is_a_pure_function_of_the_seed() {
        let collect = |seed| {
            let mut g = GeometricGaps::new(seed, 0.1, 5);
            (0..50).map(|_| g.next_fire()).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn any_fire_of_matches_the_sampler_rate_statistically() {
        // The event rate of the geometric process built from a sampler
        // must match the sampler's empirical any-fire rate: same law,
        // different (independent) realisation.
        let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.004 }, 64, 7);
        let cycles = 50_000u64;
        let sampler_fires =
            (0..cycles).filter(|&t| s.any_fire_at(t)).count() as f64 / cycles as f64;
        let mut g = GeometricGaps::any_fire_of(&s, 7, 0);
        let mut geo_fires = 0usize;
        loop {
            let f = g.next_fire();
            if f >= cycles {
                break;
            }
            geo_fires += 1;
        }
        let geo_rate = geo_fires as f64 / cycles as f64;
        let p = 1.0 - (1.0 - 0.004f64).powi(64);
        assert!((sampler_fires - p).abs() < 0.01, "sampler rate {sampler_fires} vs {p}");
        assert!((geo_rate - p).abs() < 0.01, "geometric rate {geo_rate} vs {p}");
    }

    #[test]
    #[should_panic]
    fn geometric_rejects_bad_probability() {
        GeometricGaps::new(0, 1.5, 0);
    }
}
