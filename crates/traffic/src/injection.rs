//! Packet injection processes.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When sources create packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Each core flips an independent coin every cycle: inject with
    /// probability `rate` (packets/core/cycle) — the paper's load sweep
    /// in Fig 3 uses exactly this open-loop process.
    Bernoulli {
        /// Packets per core per cycle, in `[0, 1]`.
        rate: f64,
    },
    /// Maximum load: every core offers a packet every cycle (the
    /// saturation measurement behind "peak achievable bandwidth").
    Saturation,
}

impl InjectionProcess {
    /// `true` if a core injects at this cycle draw.
    pub fn fires(&self, rng: &mut SmallRng) -> bool {
        match *self {
            InjectionProcess::Bernoulli { rate } => rng.gen::<f64>() < rate,
            InjectionProcess::Saturation => true,
        }
    }

    /// The offered load in packets/core/cycle.
    pub fn offered_load(&self) -> f64 {
        match *self {
            InjectionProcess::Bernoulli { rate } => rate,
            InjectionProcess::Saturation => 1.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a Bernoulli rate lies outside `[0, 1]`.
    pub fn validate(&self) {
        if let InjectionProcess::Bernoulli { rate } = *self {
            assert!(
                (0.0..=1.0).contains(&rate),
                "injection rate {rate} outside [0, 1]"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_rate_is_respected_statistically() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = InjectionProcess::Bernoulli { rate: 0.3 };
        let fires = (0..100_000).filter(|_| p.fires(&mut rng)).count();
        let rate = fires as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn saturation_always_fires() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = InjectionProcess::Saturation;
        assert!((0..100).all(|_| p.fires(&mut rng)));
        assert_eq!(p.offered_load(), 1.0);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = InjectionProcess::Bernoulli { rate: 0.0 };
        assert!((0..100).all(|_| !p.fires(&mut rng)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_panics() {
        InjectionProcess::Bernoulli { rate: 1.5 }.validate();
    }
}
