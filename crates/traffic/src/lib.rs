//! Workload generation for the `wimnet` multichip systems.
//!
//! The paper evaluates with two workload families:
//!
//! * **Synthetic traffic** (§IV.B/C): uniform random destinations where
//!   "traffic originating from each core has a certain preset
//!   probability of being a memory access while the rest of the traffic
//!   is addressed to all other cores in the entire system with equal
//!   probability", swept over injection loads and memory-access
//!   fractions.  [`UniformRandom`] implements exactly that; the classic
//!   permutation patterns (transpose, bit-complement, hotspot …) are in
//!   [`patterns`] for wider coverage.
//! * **Application-specific traffic** (§IV.D): PARSEC and SPLASH-2
//!   behaviours extracted with SynFull (their ref \[20\]).  SynFull model
//!   files are not redistributable, so [`app`] provides the documented
//!   substitute: two-level Markov-modulated generators whose phase
//!   structure, memory intensity and burstiness are parameterised per
//!   application in [`profiles`] (see DESIGN.md §3 for the substitution
//!   argument).
//!
//! All generators are deterministic given a seed and produce
//! [`TrafficEvent`]s that the `wimnet-core` driver maps onto network
//! endpoints.  Memory-side *addresses* come from [`address_stream`]:
//! per-stack generators (sequential, strided, uniform, hot-row) that
//! are pure functions of a counter-RNG stream key and the request
//! ordinal, feeding the cycle-accurate controllers in `wimnet-memory`
//! (see `docs/memory.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_stream;
pub mod app;
pub mod injection;
pub mod patterns;
pub mod profiles;
pub mod trace;
pub mod uniform;

pub use address_stream::{AddressStream, AddressStreamSpec};
pub use app::{AppPhase, AppProfile, AppWorkload};
pub use injection::{GeometricGapStepper, GeometricGaps, InjectionProcess, InjectionSampler};
pub use patterns::TrafficPattern;
pub use trace::{Trace, TraceEvent};
pub use uniform::UniformRandom;

use serde::{Deserialize, Serialize};

/// A traffic endpoint: a core or a memory stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Endpoint {
    /// Processing core, by global core index.
    Core(usize),
    /// Memory stack, by stack index.
    Memory(usize),
}

impl Endpoint {
    /// `true` for memory endpoints.
    pub fn is_memory(self) -> bool {
        matches!(self, Endpoint::Memory(_))
    }
}

/// Message classes, used by request/reply workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Fire-and-forget data packet (the paper's synthetic traffic).
    Oneway,
    /// Memory read request (expects a reply from the stack).
    MemoryRead,
    /// Memory write (data to the stack, no reply).
    MemoryWrite,
    /// Cache-coherence control message between cores.
    Coherence,
    /// Reply carrying data back to the requester.
    Reply,
}

/// One packet the workload wants injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source endpoint (always a core for generated traffic).
    pub src: Endpoint,
    /// Destination endpoint.
    pub dest: Endpoint,
    /// Packet length in flits.
    pub flits: u32,
    /// Message class.
    pub kind: MessageKind,
}

/// A workload: a deterministic stream of traffic events.
pub trait Workload {
    /// Packets to inject at cycle `now`.  Called once per cycle with
    /// strictly increasing `now` — except across a gap sanctioned by
    /// [`Workload::next_event_at`], whose cycles may be skipped.
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent>;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// The system shape this workload generates for: `(cores, stacks)`.
    fn shape(&self) -> (usize, usize);

    /// The earliest cycle `>= now` at which [`Workload::generate`] may
    /// return events, or `None` when the workload cannot predict it
    /// (e.g. a generator walking a sequential RNG whose state must
    /// advance every cycle).  Returning `Some(c)` is a promise that
    /// skipping the `generate` calls for cycles in `[now, c)` leaves
    /// the workload's output unchanged — the idle fast-forward contract
    /// the simulation driver relies on to jump over dead air (the full
    /// contract lives in `docs/fast_forward.md`).  Every shipped
    /// workload satisfies it with counter-based draws: the Bernoulli
    /// generators ([`UniformRandom`], [`patterns::PatternWorkload`])
    /// make generation a pure function of `(seed, core, cycle)` so the
    /// next firing cycle is computable without consuming state (see
    /// `docs/sweeps.md`), and [`AppWorkload`] precomputes event-indexed
    /// phase/fire schedules so quiet application phases skip in
    /// O(events) rather than O(cycles).
    fn next_event_at(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }
}
