//! Classic synthetic permutation patterns.
//!
//! Beyond the paper's uniform random workload, the NoC literature
//! exercises interconnects with adversarial permutations.  They are
//! included for the extended evaluation and the ablation benches.

use rand::counter::StreamKey;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::injection::{InjectionProcess, InjectionSampler};
use crate::{Endpoint, MessageKind, TrafficEvent, Workload};

/// A destination function over core indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrafficPattern {
    /// Bit-complement: core `i` sends to `!i` (mod cores).
    BitComplement,
    /// Bit-reverse over the index width.
    BitReverse,
    /// Transpose of the square core matrix.
    Transpose,
    /// Perfect shuffle (rotate index bits left by one).
    Shuffle,
    /// Everyone sends to a fixed set of hotspot cores with probability
    /// `fraction`, else uniform random.
    Hotspot {
        /// The hotspot cores.
        spots: Vec<usize>,
        /// Probability of addressing a hotspot.
        fraction: f64,
    },
    /// Neighbour traffic: core `i` sends to `i + 1` (mod cores).
    Neighbor,
}

impl TrafficPattern {
    /// Index width in bits for a system of `cores` cores.
    fn bits(cores: usize) -> u32 {
        usize::BITS - (cores - 1).leading_zeros()
    }

    /// Destination core for `src` in a `cores`-core system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a power of two for the bit-permutation
    /// patterns, or if a hotspot index is out of range.
    pub fn dest<R: Rng>(&self, src: usize, cores: usize, rng: &mut R) -> usize {
        let pow2 = cores.is_power_of_two();
        let d = match self {
            TrafficPattern::BitComplement => {
                assert!(pow2, "bit-complement needs a power-of-two core count");
                !src & (cores - 1)
            }
            TrafficPattern::BitReverse => {
                assert!(pow2, "bit-reverse needs a power-of-two core count");
                let b = Self::bits(cores);
                (src.reverse_bits() >> (usize::BITS - b)) & (cores - 1)
            }
            TrafficPattern::Transpose => {
                let side = (cores as f64).sqrt() as usize;
                assert_eq!(side * side, cores, "transpose needs a square core count");
                let (x, y) = (src % side, src / side);
                x * side + y
            }
            TrafficPattern::Shuffle => {
                assert!(pow2, "shuffle needs a power-of-two core count");
                let b = Self::bits(cores);
                ((src << 1) | (src >> (b - 1))) & (cores - 1)
            }
            TrafficPattern::Hotspot { spots, fraction } => {
                assert!(spots.iter().all(|&s| s < cores), "hotspot out of range");
                if rng.gen::<f64>() < *fraction {
                    spots[rng.gen_range(0..spots.len())]
                } else {
                    let mut d = rng.gen_range(0..cores - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                }
            }
            TrafficPattern::Neighbor => (src + 1) % cores,
        };
        d.min(cores - 1)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::BitReverse => "bit-reverse",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Neighbor => "neighbor",
        }
    }
}

/// A [`Workload`] that drives a [`TrafficPattern`] with an injection
/// process and a memory-access fraction (memory picks stacks uniformly,
/// as in the paper's workload).
///
/// Like [`crate::UniformRandom`], generation is counter-based per
/// `(core, cycle)`, so the workload supports exact
/// [`Workload::next_event_at`] answers and idle fast-forward.
#[derive(Debug, Clone)]
pub struct PatternWorkload {
    pattern: TrafficPattern,
    cores: usize,
    stacks: usize,
    memory_fraction: f64,
    sampler: InjectionSampler,
    packet_flits: u32,
    /// Per-core destination stream keys (see [`crate::UniformRandom`]).
    keys: Vec<StreamKey>,
    /// Reusable fire-set buffer.
    fired: Vec<usize>,
    name: String,
}

impl PatternWorkload {
    /// Creates a pattern-driven workload.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see [`TrafficPattern::dest`] and
    /// [`InjectionProcess::validate`]).
    pub fn new(
        pattern: TrafficPattern,
        cores: usize,
        stacks: usize,
        memory_fraction: f64,
        injection: InjectionProcess,
        packet_flits: u32,
        seed: u64,
    ) -> Self {
        assert!(cores >= 2 && stacks > 0 && packet_flits > 0);
        assert!((0.0..=1.0).contains(&memory_fraction));
        injection.validate();
        let name = format!("{} ({:.0}% memory)", pattern.label(), memory_fraction * 100.0);
        PatternWorkload {
            pattern,
            cores,
            stacks,
            memory_fraction,
            sampler: InjectionSampler::new(injection, cores, seed),
            packet_flits,
            keys: (0..cores as u64).map(|c| StreamKey::new(seed, c)).collect(),
            fired: Vec::with_capacity(cores),
            name,
        }
    }
}

impl Workload for PatternWorkload {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        let mut fired = std::mem::take(&mut self.fired);
        self.sampler.fires_at_into(now, &mut fired);
        let mut events = Vec::with_capacity(fired.len());
        for &core in &fired {
            // Each firing core draws destinations from its own
            // (core, cycle) stream.
            let mut rng = self.keys[core].rng(now);
            let (dest, kind) = if rng.gen::<f64>() < self.memory_fraction {
                (
                    Endpoint::Memory(rng.gen_range(0..self.stacks)),
                    MessageKind::Oneway,
                )
            } else {
                let d = self.pattern.dest(core, self.cores, &mut rng);
                if d == core {
                    continue; // fixed points of the permutation stay local
                }
                (Endpoint::Core(d), MessageKind::Oneway)
            };
            events.push(TrafficEvent {
                cycle: now,
                src: Endpoint::Core(core),
                dest,
                flits: self.packet_flits,
                kind,
            });
        }
        self.fired = fired;
        events
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.cores, self.stacks)
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Sound even though permutation fixed points may drop a firing
        // core's event: next_fire_at returns the first cycle any core
        // *fires*, which can only be earlier than (or equal to) the
        // first cycle any event survives the fixed-point filter.
        Some(self.sampler.next_fire_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(3)
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let p = TrafficPattern::BitComplement;
        let mut r = rng();
        for src in 0..64 {
            let d = p.dest(src, 64, &mut r);
            assert_eq!(p.dest(d, 64, &mut r), src);
        }
        assert_eq!(p.dest(0, 64, &mut r), 63);
    }

    #[test]
    fn transpose_mirrors_the_matrix() {
        let p = TrafficPattern::Transpose;
        let mut r = rng();
        // 8x8 matrix: (x=1, y=0) -> (x=0, y=1).
        assert_eq!(p.dest(1, 64, &mut r), 8);
        assert_eq!(p.dest(8, 64, &mut r), 1);
        // Diagonal cores are fixed points.
        assert_eq!(p.dest(9, 64, &mut r), 9);
    }

    #[test]
    fn bit_reverse_and_shuffle_permute() {
        let mut r = rng();
        for p in [TrafficPattern::BitReverse, TrafficPattern::Shuffle] {
            let mut dests: Vec<_> = (0..64).map(|s| p.dest(s, 64, &mut r)).collect();
            dests.sort_unstable();
            dests.dedup();
            assert_eq!(dests.len(), 64, "{} must be a permutation", p.label());
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let p = TrafficPattern::Hotspot { spots: vec![0, 1], fraction: 0.8 };
        let mut r = rng();
        let hits = (0..10_000)
            .filter(|_| p.dest(32, 64, &mut r) <= 1)
            .count();
        // ~80% plus the uniform share landing on 0/1.
        assert!(hits > 7_500, "got {hits}");
    }

    #[test]
    fn neighbor_wraps() {
        let p = TrafficPattern::Neighbor;
        let mut r = rng();
        assert_eq!(p.dest(63, 64, &mut r), 0);
        assert_eq!(p.dest(5, 64, &mut r), 6);
    }

    #[test]
    fn pattern_workload_generates_valid_events() {
        let mut w = PatternWorkload::new(
            TrafficPattern::Transpose,
            64,
            4,
            0.2,
            InjectionProcess::Bernoulli { rate: 0.5 },
            64,
            11,
        );
        let mut any = false;
        for now in 0..50 {
            for e in w.generate(now) {
                any = true;
                let Endpoint::Core(s) = e.src else { panic!() };
                if let Endpoint::Core(d) = e.dest {
                    assert_ne!(s, d);
                }
            }
        }
        assert!(any);
        assert_eq!(w.shape(), (64, 4));
    }

    #[test]
    #[should_panic]
    fn transpose_rejects_non_square() {
        TrafficPattern::Transpose.dest(0, 48, &mut rng());
    }
}
