//! Per-application profiles for the SynFull-substitute generators.
//!
//! Twelve PARSEC / SPLASH-2 applications, parameterised from their
//! published characterisations (working-set size, sharing behaviour,
//! memory intensity — e.g. the PARSEC tech report and the SynFull paper
//! itself).  The absolute numbers are synthetic; what Fig 6 needs is the
//! *spread*: memory-light compute-bound codes (blackscholes, swaptions)
//! through irregular memory-heavy ones (canneal, radix), with distinct
//! burstiness and sharing patterns.

use crate::app::{AppPhase, AppProfile};

/// Builder shorthand.
#[allow(clippy::too_many_arguments)]
fn phase(
    name: &'static str,
    injection_rate: f64,
    memory_fraction: f64,
    read_fraction: f64,
    coherence_fraction: f64,
    locality: f64,
    mean_dwell_cycles: f64,
) -> AppPhase {
    AppPhase {
        name,
        injection_rate,
        memory_fraction,
        read_fraction,
        coherence_fraction,
        locality,
        mean_dwell_cycles,
    }
}

/// Standard two-phase compute/communicate structure.
fn two_phase(
    name: &'static str,
    suite: &'static str,
    compute: AppPhase,
    comm: AppPhase,
    p_leave_compute: f64,
) -> AppProfile {
    AppProfile {
        name,
        suite,
        phases: vec![compute, comm],
        transitions: vec![
            vec![1.0 - p_leave_compute, p_leave_compute],
            vec![0.9, 0.1],
        ],
    }
}

/// blackscholes — embarrassingly parallel option pricing: tiny working
/// set, almost no sharing, light memory traffic.
pub fn blackscholes() -> AppProfile {
    two_phase(
        "blackscholes",
        "PARSEC",
        phase("compute", 0.000200, 0.30, 0.85, 0.30, 0.90, 400.0),
        phase("sync", 0.001000, 0.10, 0.50, 0.90, 0.30, 30.0),
        0.3,
    )
}

/// bodytrack — computer vision pipeline: moderate sharing, bursty
/// frame-boundary communication.
pub fn bodytrack() -> AppProfile {
    two_phase(
        "bodytrack",
        "PARSEC",
        phase("track", 0.000500, 0.35, 0.75, 0.40, 0.70, 250.0),
        phase("frame-sync", 0.003000, 0.20, 0.60, 0.80, 0.25, 50.0),
        0.4,
    )
}

/// canneal — cache-hostile simulated annealing over a huge netlist:
/// the memory-heaviest PARSEC code, little locality.
pub fn canneal() -> AppProfile {
    AppProfile {
        name: "canneal",
        suite: "PARSEC",
        phases: vec![
            phase("anneal", 0.001250, 0.70, 0.80, 0.20, 0.40, 300.0),
            phase("swap-burst", 0.002500, 0.75, 0.70, 0.25, 0.30, 80.0),
        ],
        transitions: vec![vec![0.85, 0.15], vec![0.60, 0.40]],
    }
}

/// dedup — pipelined compression: heavy producer/consumer transfers
/// between pipeline stages on different cores.
pub fn dedup() -> AppProfile {
    two_phase(
        "dedup",
        "PARSEC",
        phase("pipeline", 0.001000, 0.40, 0.55, 0.30, 0.50, 200.0),
        phase("hash-burst", 0.002250, 0.55, 0.65, 0.40, 0.35, 60.0),
        0.35,
    )
}

/// ferret — content-similarity search pipeline: moderate memory,
/// significant cross-stage data movement.
pub fn ferret() -> AppProfile {
    two_phase(
        "ferret",
        "PARSEC",
        phase("rank", 0.000750, 0.45, 0.70, 0.35, 0.55, 220.0),
        phase("query-burst", 0.002000, 0.50, 0.75, 0.50, 0.30, 70.0),
        0.3,
    )
}

/// fluidanimate — SPH fluid simulation: nearest-neighbour sharing,
/// regular barrier structure.
pub fn fluidanimate() -> AppProfile {
    two_phase(
        "fluidanimate",
        "PARSEC",
        phase("particles", 0.000600, 0.40, 0.70, 0.45, 0.80, 300.0),
        phase("barrier", 0.002500, 0.15, 0.50, 0.90, 0.40, 40.0),
        0.25,
    )
}

/// swaptions — Monte-Carlo pricing: compute-bound, minimal traffic.
pub fn swaptions() -> AppProfile {
    two_phase(
        "swaptions",
        "PARSEC",
        phase("simulate", 0.000150, 0.25, 0.85, 0.25, 0.90, 500.0),
        phase("reduce", 0.000750, 0.15, 0.40, 0.85, 0.30, 25.0),
        0.2,
    )
}

/// vips — image processing pipeline: streaming memory traffic.
pub fn vips() -> AppProfile {
    two_phase(
        "vips",
        "PARSEC",
        phase("filter", 0.000900, 0.55, 0.65, 0.30, 0.60, 250.0),
        phase("stripe-handoff", 0.002000, 0.45, 0.55, 0.60, 0.35, 60.0),
        0.35,
    )
}

/// barnes — SPLASH-2 N-body: irregular tree walks, moderate sharing.
pub fn barnes() -> AppProfile {
    two_phase(
        "barnes",
        "SPLASH-2",
        phase("tree-walk", 0.000750, 0.45, 0.80, 0.50, 0.55, 280.0),
        phase("tree-build", 0.002000, 0.55, 0.60, 0.55, 0.30, 90.0),
        0.3,
    )
}

/// fft — SPLASH-2 six-step FFT: compute phases separated by all-to-all
/// transpose bursts, the classic bisection stressor.
pub fn fft() -> AppProfile {
    AppProfile {
        name: "fft",
        suite: "SPLASH-2",
        phases: vec![
            phase("butterfly", 0.000400, 0.35, 0.75, 0.30, 0.85, 350.0),
            phase("transpose", 0.005000, 0.30, 0.50, 0.15, 0.05, 120.0),
        ],
        transitions: vec![vec![0.8, 0.2], vec![0.95, 0.05]],
    }
}

/// lu — SPLASH-2 blocked LU: regular block broadcasts along rows and
/// columns.
pub fn lu() -> AppProfile {
    two_phase(
        "lu",
        "SPLASH-2",
        phase("factor", 0.000500, 0.40, 0.75, 0.35, 0.70, 300.0),
        phase("block-bcast", 0.003000, 0.30, 0.55, 0.45, 0.20, 70.0),
        0.3,
    )
}

/// radix — SPLASH-2 radix sort: permutation phases that hammer memory
/// and the bisection simultaneously.
pub fn radix() -> AppProfile {
    AppProfile {
        name: "radix",
        suite: "SPLASH-2",
        phases: vec![
            phase("count", 0.001000, 0.60, 0.80, 0.20, 0.60, 200.0),
            phase("permute", 0.004000, 0.65, 0.45, 0.15, 0.10, 100.0),
        ],
        transitions: vec![vec![0.8, 0.2], vec![0.85, 0.15]],
    }
}

/// water — SPLASH-2 molecular dynamics: small working set, neighbour
/// exchanges, light memory load.
pub fn water() -> AppProfile {
    two_phase(
        "water",
        "SPLASH-2",
        phase("forces", 0.000300, 0.30, 0.80, 0.45, 0.85, 400.0),
        phase("exchange", 0.001500, 0.20, 0.55, 0.75, 0.40, 40.0),
        0.25,
    )
}

/// All shipped profiles, in the order used by the Fig 6 harness.
pub fn all() -> Vec<AppProfile> {
    vec![
        blackscholes(),
        bodytrack(),
        canneal(),
        dedup(),
        ferret(),
        fluidanimate(),
        swaptions(),
        vips(),
        barnes(),
        fft(),
        lu(),
        radix(),
        water(),
    ]
}

/// Looks a profile up by name (case-insensitive).
pub fn by_name(name: &str) -> Option<AppProfile> {
    all().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_profiles_cover_both_suites() {
        let profiles = all();
        assert_eq!(profiles.len(), 13);
        assert!(profiles.iter().any(|p| p.suite == "PARSEC"));
        assert!(profiles.iter().any(|p| p.suite == "SPLASH-2"));
        // Unique names.
        let mut names: Vec<_> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn memory_intensity_spans_a_wide_range() {
        let profiles = all();
        let mem: Vec<f64> = profiles.iter().map(|p| p.mean_memory_fraction()).collect();
        let min = mem.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mem.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.30, "lightest app {min}");
        assert!(max > 0.60, "heaviest app {max}");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("canneal").unwrap().name, "canneal");
        assert_eq!(by_name("FFT").unwrap().name, "fft");
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn compute_bound_apps_offer_less_traffic_than_memory_bound() {
        let light = swaptions();
        let heavy = radix();
        let offered = |p: &AppProfile| -> f64 {
            let dwell: f64 = p.phases.iter().map(|ph| ph.mean_dwell_cycles).sum();
            p.phases
                .iter()
                .map(|ph| ph.injection_rate * ph.mean_dwell_cycles / dwell)
                .sum()
        };
        assert!(offered(&light) < offered(&heavy));
    }
}
