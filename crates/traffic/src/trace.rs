//! Traffic trace capture and deterministic replay.
//!
//! Any [`Workload`] can be recorded into a [`Trace`] and replayed later —
//! the mechanism the benchmark harness uses to run *identical* packet
//! sequences through different architectures, removing generator noise
//! from A/B comparisons.

use serde::{Deserialize, Serialize};

use crate::{TrafficEvent, Workload};

/// A recorded traffic event (alias of [`TrafficEvent`]; traces store
/// exactly what generators emit).
pub type TraceEvent = TrafficEvent;

/// An ordered traffic recording.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    cores: usize,
    stacks: usize,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Records `cycles` cycles of `workload`.
    pub fn record(workload: &mut dyn Workload, cycles: u64) -> Self {
        let (cores, stacks) = workload.shape();
        let mut events = Vec::new();
        for now in 0..cycles {
            events.extend(workload.generate(now));
        }
        Trace {
            name: format!("{} [trace]", workload.name()),
            cores,
            stacks,
            events,
        }
    }

    /// The recorded events in injection order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total flits across all recorded packets.
    pub fn total_flits(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.flits)).sum()
    }

    /// A replaying [`Workload`] over this trace.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay { trace: self, pos: 0 }
    }
}

/// Replays a [`Trace`] cycle by cycle.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl Workload for TraceReplay<'_> {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        let mut out = Vec::new();
        while self.pos < self.trace.events.len()
            && self.trace.events[self.pos].cycle <= now
        {
            out.push(self.trace.events[self.pos]);
            self.pos += 1;
        }
        out
    }

    fn name(&self) -> &str {
        &self.trace.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.trace.cores, self.trace.stacks)
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Replays know their future exactly: the next recorded event's
        // cycle (clamped to `now` for events already due).  When the
        // trace is exhausted there are no more events, ever; report
        // "not before u64::MAX" so drivers can skip straight to the end
        // of the measurement window.
        match self.trace.events.get(self.pos) {
            Some(e) => Some(e.cycle.max(now)),
            None => Some(u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::InjectionProcess;
    use crate::uniform::UniformRandom;

    fn workload() -> UniformRandom {
        UniformRandom::new(
            16,
            2,
            0.2,
            InjectionProcess::Bernoulli { rate: 0.3 },
            8,
            123,
        )
    }

    #[test]
    fn record_then_replay_is_identical() {
        let mut w = workload();
        let trace = Trace::record(&mut w, 200);
        assert!(!trace.is_empty());

        // A fresh generator with the same seed produces the same events;
        // the replay must match it cycle for cycle.
        let mut fresh = workload();
        let mut replay = trace.replay();
        for now in 0..200 {
            assert_eq!(replay.generate(now), fresh.generate(now), "cycle {now}");
        }
        // Trace exhausted afterwards.
        assert!(replay.generate(1000).is_empty());
    }

    #[test]
    fn trace_preserves_shape_and_counts() {
        let mut w = workload();
        let trace = Trace::record(&mut w, 100);
        let mut replay = trace.replay();
        assert_eq!(replay.shape(), (16, 2));
        let replayed: usize = (0..100).map(|n| replay.generate(n).len()).sum();
        assert_eq!(replayed, trace.len());
        assert!(trace.total_flits() >= trace.len() as u64);
        assert!(replay.name().contains("[trace]"));
    }

    #[test]
    fn empty_trace_replays_empty() {
        let trace = Trace::default();
        let mut r = trace.replay();
        assert!(r.generate(0).is_empty());
        assert_eq!(trace.len(), 0);
    }
}
