//! The paper's uniform random workload with a memory-access fraction.
//!
//! §IV.B: "traffic originating from each core has a certain preset
//! probability of being a memory access while the rest of the traffic is
//! addressed to all other cores in the entire system with equal
//! probability."  Memory accesses pick a stack uniformly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::injection::InjectionProcess;
use crate::{Endpoint, MessageKind, TrafficEvent, Workload};

/// Uniform-random traffic over all cores with a memory-access share.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    cores: usize,
    stacks: usize,
    memory_fraction: f64,
    injection: InjectionProcess,
    packet_flits: u32,
    /// Probability that a memory access targets the core's home stack
    /// (NUMA affinity); the rest go to a uniformly random stack.
    local_memory_bias: f64,
    /// Home stack per core (required when `local_memory_bias > 0`).
    home_stack: Option<Vec<usize>>,
    rng: SmallRng,
    name: String,
}

impl UniformRandom {
    /// Creates the workload for a system of `cores` cores and `stacks`
    /// memory stacks.
    ///
    /// # Panics
    ///
    /// Panics if `cores < 2`, `stacks == 0`, `packet_flits == 0`, the
    /// injection rate is out of range, or `memory_fraction` is outside
    /// `[0, 1]`.
    pub fn new(
        cores: usize,
        stacks: usize,
        memory_fraction: f64,
        injection: InjectionProcess,
        packet_flits: u32,
        seed: u64,
    ) -> Self {
        assert!(cores >= 2, "uniform traffic needs at least two cores");
        assert!(stacks > 0, "memory traffic needs at least one stack");
        assert!(packet_flits > 0);
        assert!(
            (0.0..=1.0).contains(&memory_fraction),
            "memory fraction {memory_fraction} outside [0, 1]"
        );
        injection.validate();
        UniformRandom {
            cores,
            stacks,
            memory_fraction,
            injection,
            packet_flits,
            local_memory_bias: 0.0,
            home_stack: None,
            rng: SmallRng::seed_from_u64(seed),
            name: format!(
                "uniform-random ({:.0}% memory, load {})",
                memory_fraction * 100.0,
                injection.offered_load()
            ),
        }
    }

    /// Adds NUMA memory affinity: with probability `bias` a memory
    /// access targets `home_stack[core]` instead of a uniform stack.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`, `home_stack` does not cover
    /// every core, or an entry is out of range.
    pub fn with_memory_affinity(mut self, bias: f64, home_stack: Vec<usize>) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias {bias} outside [0, 1]");
        assert_eq!(home_stack.len(), self.cores, "one home stack per core");
        assert!(home_stack.iter().all(|&s| s < self.stacks));
        self.local_memory_bias = bias;
        self.home_stack = Some(home_stack);
        self
    }

    /// The paper's default: 20 % memory accesses, 64-flit packets.
    pub fn paper(cores: usize, stacks: usize, injection: InjectionProcess, seed: u64) -> Self {
        UniformRandom::new(cores, stacks, 0.20, injection, 64, seed)
    }

    /// The configured memory-access fraction.
    pub fn memory_fraction(&self) -> f64 {
        self.memory_fraction
    }

    /// Draws a destination for a packet from `src`.
    fn destination(&mut self, src: usize) -> (Endpoint, MessageKind) {
        if self.rng.gen::<f64>() < self.memory_fraction {
            let stack = match &self.home_stack {
                Some(home) if self.rng.gen::<f64>() < self.local_memory_bias => {
                    home[src]
                }
                _ => self.rng.gen_range(0..self.stacks),
            };
            (Endpoint::Memory(stack), MessageKind::Oneway)
        } else {
            // Uniform over all *other* cores.
            let mut dest = self.rng.gen_range(0..self.cores - 1);
            if dest >= src {
                dest += 1;
            }
            (Endpoint::Core(dest), MessageKind::Oneway)
        }
    }
}

impl Workload for UniformRandom {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        let mut events = Vec::new();
        for core in 0..self.cores {
            if self.injection.fires(&mut self.rng) {
                let (dest, kind) = self.destination(core);
                events.push(TrafficEvent {
                    cycle: now,
                    src: Endpoint::Core(core),
                    dest,
                    flits: self.packet_flits,
                    kind,
                });
            }
        }
        events
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.cores, self.stacks)
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        match self.injection {
            InjectionProcess::Bernoulli { rate } => {
                if rate == 0.0 {
                    // A zero rate never fires and draws no randomness,
                    // so every remaining cycle may be skipped.
                    Some(u64::MAX)
                } else {
                    // A positive Bernoulli rate flips one coin per core
                    // per cycle; skipping cycles would desynchronise
                    // the RNG stream, so the driver must keep calling
                    // `generate`.
                    None
                }
            }
            // Saturation offers packets every cycle: nothing to skip.
            InjectionProcess::Saturation => Some(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(memory_fraction: f64, rate: f64) -> UniformRandom {
        UniformRandom::new(
            64,
            4,
            memory_fraction,
            InjectionProcess::Bernoulli { rate },
            64,
            9,
        )
    }

    #[test]
    fn no_self_traffic_and_valid_ranges() {
        let mut w = workload(0.2, 1.0);
        for now in 0..50 {
            for e in w.generate(now) {
                let Endpoint::Core(src) = e.src else { panic!("core sources") };
                match e.dest {
                    Endpoint::Core(d) => {
                        assert_ne!(d, src, "no self-traffic");
                        assert!(d < 64);
                    }
                    Endpoint::Memory(m) => assert!(m < 4),
                }
                assert_eq!(e.flits, 64);
                assert_eq!(e.cycle, now);
            }
        }
    }

    #[test]
    fn memory_fraction_is_respected_statistically() {
        let mut w = workload(0.2, 1.0);
        let mut memory = 0usize;
        let mut total = 0usize;
        for now in 0..400 {
            for e in w.generate(now) {
                total += 1;
                memory += usize::from(e.dest.is_memory());
            }
        }
        let frac = memory as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn injection_rate_scales_event_count() {
        let mut w = workload(0.2, 0.1);
        let mut total = 0usize;
        for now in 0..1000 {
            total += w.generate(now).len();
        }
        // 64 cores x 1000 cycles x 0.1 ≈ 6400.
        let expected = 6400.0;
        assert!((total as f64 - expected).abs() < expected * 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = workload(0.5, 0.5);
        let mut b = workload(0.5, 0.5);
        for now in 0..100 {
            assert_eq!(a.generate(now), b.generate(now));
        }
    }

    #[test]
    fn destination_spread_covers_all_cores() {
        let mut w = workload(0.0, 1.0);
        let mut seen = [false; 64];
        for now in 0..200 {
            for e in w.generate(now) {
                if let Endpoint::Core(d) = e.dest {
                    seen[d] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "uniform must reach every core");
    }

    #[test]
    #[should_panic]
    fn one_core_system_panics() {
        UniformRandom::new(1, 4, 0.2, InjectionProcess::Saturation, 64, 0);
    }

    #[test]
    #[should_panic]
    fn bad_memory_fraction_panics() {
        UniformRandom::new(64, 4, 1.2, InjectionProcess::Saturation, 64, 0);
    }
}
