//! The paper's uniform random workload with a memory-access fraction.
//!
//! §IV.B: "traffic originating from each core has a certain preset
//! probability of being a memory access while the rest of the traffic is
//! addressed to all other cores in the entire system with equal
//! probability."  Memory accesses pick a stack uniformly.
//!
//! Generation is **counter-based**: the set of firing cores is a pure
//! function of the cycle index ([`InjectionSampler`]) and each firing
//! `(core, cycle)` pair draws its destination from its own
//! [`CounterRng`] stream, so [`UniformRandom::generate`] is a pure
//! function of the cycle index.  Skipping quiet cycles therefore cannot
//! desynchronise anything, which lets [`Workload::next_event_at`] return
//! the true next firing cycle for Bernoulli injection and unlock idle
//! fast-forward on the paper's Fig 3 low-load sweeps.

use rand::counter::{CounterRng, StreamKey};
use rand::Rng;

use crate::injection::{InjectionProcess, InjectionSampler};
use crate::{Endpoint, MessageKind, TrafficEvent, Workload};

/// Uniform-random traffic over all cores with a memory-access share.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    cores: usize,
    stacks: usize,
    memory_fraction: f64,
    sampler: InjectionSampler,
    packet_flits: u32,
    /// Probability that a memory access targets the core's home stack
    /// (NUMA affinity); the rest go to a uniformly random stack.
    local_memory_bias: f64,
    /// Home stack per core (required when `local_memory_bias > 0`).
    home_stack: Option<Vec<usize>>,
    /// Share of memory-destined packets that are read *requests*
    /// (`MessageKind::MemoryRead`, expecting a data reply from the
    /// stack); the rest stay fire-and-forget `Oneway` data.
    read_share: f64,
    /// Length of a read-request packet in flits (an address/header
    /// packet, much shorter than the data reply).
    read_request_flits: u32,
    /// Per-core destination stream keys (the `(seed, core)` hash
    /// prefix, precomputed).
    keys: Vec<StreamKey>,
    /// Reusable fire-set buffer for [`InjectionSampler::fires_at_into`].
    fired: Vec<usize>,
    name: String,
}

impl UniformRandom {
    /// Creates the workload for a system of `cores` cores and `stacks`
    /// memory stacks.
    ///
    /// # Panics
    ///
    /// Panics if `cores < 2`, `stacks == 0`, `packet_flits == 0`, the
    /// injection rate is out of range, or `memory_fraction` is outside
    /// `[0, 1]`.
    pub fn new(
        cores: usize,
        stacks: usize,
        memory_fraction: f64,
        injection: InjectionProcess,
        packet_flits: u32,
        seed: u64,
    ) -> Self {
        assert!(cores >= 2, "uniform traffic needs at least two cores");
        assert!(stacks > 0, "memory traffic needs at least one stack");
        assert!(packet_flits > 0);
        assert!(
            (0.0..=1.0).contains(&memory_fraction),
            "memory fraction {memory_fraction} outside [0, 1]"
        );
        injection.validate();
        UniformRandom {
            cores,
            stacks,
            memory_fraction,
            sampler: InjectionSampler::new(injection, cores, seed),
            packet_flits,
            local_memory_bias: 0.0,
            home_stack: None,
            read_share: 0.0,
            read_request_flits: packet_flits,
            keys: (0..cores as u64).map(|c| StreamKey::new(seed, c)).collect(),
            fired: Vec::with_capacity(cores),
            name: format!(
                "uniform-random ({:.0}% memory, load {})",
                memory_fraction * 100.0,
                injection.offered_load()
            ),
        }
    }

    /// Adds NUMA memory affinity: with probability `bias` a memory
    /// access targets `home_stack[core]` instead of a uniform stack.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`, `home_stack` does not cover
    /// every core, or an entry is out of range.
    pub fn with_memory_affinity(mut self, bias: f64, home_stack: Vec<usize>) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias {bias} outside [0, 1]");
        assert_eq!(home_stack.len(), self.cores, "one home stack per core");
        assert!(home_stack.iter().all(|&s| s < self.stacks));
        self.local_memory_bias = bias;
        self.home_stack = Some(home_stack);
        self
    }

    /// Turns `share` of the memory-destined packets into read
    /// *requests* (`MessageKind::MemoryRead`) of `request_flits` flits:
    /// the stack services each through its cycle-accurate controller
    /// and answers with a full data packet — closed-loop memory
    /// traffic instead of fire-and-forget stores.  `share == 0`
    /// (the default) leaves the draw stream untouched, so existing
    /// workload realizations are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `share` is outside `[0, 1]` or `request_flits` is
    /// zero.
    pub fn with_memory_reads(mut self, share: f64, request_flits: u32) -> Self {
        assert!((0.0..=1.0).contains(&share), "read share {share} outside [0, 1]");
        assert!(request_flits > 0, "read requests need at least one flit");
        self.read_share = share;
        self.read_request_flits = request_flits;
        if share > 0.0 {
            self.name = format!("{} ({:.0}% reads)", self.name, share * 100.0);
        }
        self
    }

    /// The paper's default: 20 % memory accesses, 64-flit packets.
    pub fn paper(cores: usize, stacks: usize, injection: InjectionProcess, seed: u64) -> Self {
        UniformRandom::new(cores, stacks, 0.20, injection, 64, seed)
    }

    /// The configured memory-access fraction.
    pub fn memory_fraction(&self) -> f64 {
        self.memory_fraction
    }

    /// Draws a destination for a packet from `src`, consuming further
    /// draws of that `(core, cycle)` pair's counter stream.
    fn destination(&self, src: usize, rng: &mut CounterRng) -> (Endpoint, MessageKind) {
        if rng.gen::<f64>() < self.memory_fraction {
            let stack = match &self.home_stack {
                Some(home) if rng.gen::<f64>() < self.local_memory_bias => home[src],
                _ => rng.gen_range(0..self.stacks),
            };
            // The read draw is gated so zero-share workloads keep their
            // historical draw streams bit-identically.
            let kind = if self.read_share > 0.0 && rng.gen::<f64>() < self.read_share {
                MessageKind::MemoryRead
            } else {
                MessageKind::Oneway
            };
            (Endpoint::Memory(stack), kind)
        } else {
            // Uniform over all *other* cores.
            let mut dest = rng.gen_range(0..self.cores - 1);
            if dest >= src {
                dest += 1;
            }
            (Endpoint::Core(dest), MessageKind::Oneway)
        }
    }
}

impl Workload for UniformRandom {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        // One cycle-major draw decides the firing set (a quiet cycle
        // costs a single mixer round); each firing core then draws its
        // destination from its own (core, cycle) stream.
        let mut fired = std::mem::take(&mut self.fired);
        self.sampler.fires_at_into(now, &mut fired);
        let mut events = Vec::with_capacity(fired.len());
        for &core in &fired {
            let mut rng = self.keys[core].rng(now);
            let (dest, kind) = self.destination(core, &mut rng);
            let flits = if kind == MessageKind::MemoryRead {
                self.read_request_flits
            } else {
                self.packet_flits
            };
            events.push(TrafficEvent {
                cycle: now,
                src: Endpoint::Core(core),
                dest,
                flits,
                kind,
            });
        }
        self.fired = fired;
        events
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.cores, self.stacks)
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Counter-based draws make this exact: the firing set at every
        // cycle is a pure function of the cycle index, so the scan
        // below answers "first cycle >= now with any event" without
        // consuming or desynchronising anything — at one mixer draw per
        // scanned cycle.  next_fire_at may also return a sound
        // conservative bound at its scan horizon; either way no event
        // exists before the returned cycle.
        Some(self.sampler.next_fire_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(memory_fraction: f64, rate: f64) -> UniformRandom {
        UniformRandom::new(
            64,
            4,
            memory_fraction,
            InjectionProcess::Bernoulli { rate },
            64,
            9,
        )
    }

    #[test]
    fn no_self_traffic_and_valid_ranges() {
        let mut w = workload(0.2, 1.0);
        for now in 0..50 {
            for e in w.generate(now) {
                let Endpoint::Core(src) = e.src else { panic!("core sources") };
                match e.dest {
                    Endpoint::Core(d) => {
                        assert_ne!(d, src, "no self-traffic");
                        assert!(d < 64);
                    }
                    Endpoint::Memory(m) => assert!(m < 4),
                }
                assert_eq!(e.flits, 64);
                assert_eq!(e.cycle, now);
            }
        }
    }

    #[test]
    fn memory_fraction_is_respected_statistically() {
        let mut w = workload(0.2, 1.0);
        let mut memory = 0usize;
        let mut total = 0usize;
        for now in 0..400 {
            for e in w.generate(now) {
                total += 1;
                memory += usize::from(e.dest.is_memory());
            }
        }
        let frac = memory as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn injection_rate_scales_event_count() {
        let mut w = workload(0.2, 0.1);
        let mut total = 0usize;
        for now in 0..1000 {
            total += w.generate(now).len();
        }
        // 64 cores x 1000 cycles x 0.1 ≈ 6400.
        let expected = 6400.0;
        assert!((total as f64 - expected).abs() < expected * 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = workload(0.5, 0.5);
        let mut b = workload(0.5, 0.5);
        for now in 0..100 {
            assert_eq!(a.generate(now), b.generate(now));
        }
    }

    #[test]
    fn generate_is_history_free() {
        // The counter-based property: the events at a cycle do not
        // depend on which other cycles were generated first — exactly
        // the soundness condition for skipping quiet cycles.
        let mut warmed = workload(0.3, 0.05);
        for now in 0..500 {
            warmed.generate(now);
        }
        let mut cold = workload(0.3, 0.05);
        assert_eq!(cold.generate(500), warmed.generate(500));
    }

    #[test]
    fn next_event_at_is_exact_for_bernoulli() {
        let w = workload(0.2, 0.01);
        let mut checked = 0u64;
        let mut now = 0u64;
        while checked < 10 {
            let next = w.next_event_at(now).unwrap();
            // No events strictly before the promise...
            let mut probe = w.clone();
            for t in now..next {
                assert!(probe.generate(t).is_empty(), "event before {next}");
            }
            // ...and one exactly at it.
            assert!(!probe.generate(next).is_empty());
            now = next + 1;
            checked += 1;
        }
    }

    #[test]
    fn next_event_at_handles_the_degenerate_rates() {
        let zero = workload(0.2, 0.0);
        assert_eq!(zero.next_event_at(17), Some(u64::MAX));
        let sat = UniformRandom::new(64, 4, 0.2, InjectionProcess::Saturation, 64, 9);
        assert_eq!(sat.next_event_at(17), Some(17));
    }

    #[test]
    fn destination_spread_covers_all_cores() {
        let mut w = workload(0.0, 1.0);
        let mut seen = [false; 64];
        for now in 0..200 {
            for e in w.generate(now) {
                if let Endpoint::Core(d) = e.dest {
                    seen[d] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "uniform must reach every core");
    }

    #[test]
    fn read_share_converts_memory_packets_and_shortens_requests() {
        let mut w = workload(0.5, 1.0).with_memory_reads(1.0, 8);
        let mut reads = 0usize;
        let mut memory = 0usize;
        for now in 0..100 {
            for e in w.generate(now) {
                if e.dest.is_memory() {
                    memory += 1;
                    assert_eq!(e.kind, MessageKind::MemoryRead);
                    assert_eq!(e.flits, 8, "read requests are short");
                    reads += 1;
                } else {
                    assert_eq!(e.kind, MessageKind::Oneway);
                    assert_eq!(e.flits, 64);
                }
            }
        }
        assert!(memory > 0 && reads == memory, "full read share converts everything");
        assert!(w.name().contains("reads"));
    }

    #[test]
    fn zero_read_share_leaves_the_stream_bit_identical() {
        // The read draw is gated behind `share > 0`, so the historical
        // destination realizations must be untouched.
        let mut plain = workload(0.3, 0.2);
        let mut gated = workload(0.3, 0.2).with_memory_reads(0.0, 8);
        for now in 0..300 {
            assert_eq!(plain.generate(now), gated.generate(now));
        }
    }

    #[test]
    #[should_panic]
    fn one_core_system_panics() {
        UniformRandom::new(1, 4, 0.2, InjectionProcess::Saturation, 64, 0);
    }

    #[test]
    #[should_panic]
    fn bad_memory_fraction_panics() {
        UniformRandom::new(64, 4, 1.2, InjectionProcess::Saturation, 64, 0);
    }
}
