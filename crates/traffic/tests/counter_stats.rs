//! Statistical acceptance tests for the counter-based injection RNG.
//!
//! Replacing the sequential `SmallRng` coin walk with a cycle-major
//! counter draw (Binomial count + uniform subset, a stateless hash of
//! the cycle index) must not change the *statistics* the paper's
//! sweeps are built on: each core's firing sequence is an i.i.d.
//! Bernoulli(rate) process, independent across cores and cycles.
//! These tests pin the empirical rate to the configured rate within a
//! few standard errors, across rates, seeds and cores — and check the
//! cheap independence symptoms a bad factorisation would show first
//! (per-core skew, lag-1 cycle correlation, pairwise core
//! correlation).

use wimnet_traffic::{InjectionProcess, InjectionSampler, UniformRandom, Workload};

/// Standard error of a Bernoulli(p) mean over n draws.
fn stderr(p: f64, n: u64) -> f64 {
    (p * (1.0 - p) / n as f64).sqrt()
}

fn fire_sets(sampler: &InjectionSampler, cycles: u64) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(cycles as usize);
    let mut buf = Vec::new();
    for t in 0..cycles {
        sampler.fires_at_into(t, &mut buf);
        out.push(buf.clone());
    }
    out
}

#[test]
fn empirical_rate_matches_configured_rate_across_rates_and_seeds() {
    let cycles = 30_000u64;
    let cores = 16usize;
    for &rate in &[0.001, 0.01, 0.125, 0.5, 0.9] {
        for seed in [0u64, 7, 0x5177, u64::MAX - 1] {
            let s = InjectionSampler::new(
                InjectionProcess::Bernoulli { rate },
                cores,
                seed,
            );
            let total: usize = fire_sets(&s, cycles).iter().map(Vec::len).sum();
            let n = cycles * cores as u64;
            let observed = total as f64 / n as f64;
            let tol = 4.5 * stderr(rate, n);
            assert!(
                (observed - rate).abs() < tol,
                "rate {rate} seed {seed}: observed {observed} (tol {tol})"
            );
        }
    }
}

#[test]
fn per_core_rates_are_uniform_across_the_core_axis() {
    // Every core's own marginal must hit the rate — a subset-selection
    // bug (e.g. a bias toward low indices) would skew some cores.
    let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.1 }, 64, 0x5177);
    let cycles = 30_000u64;
    let mut per_core = vec![0u64; 64];
    let mut buf = Vec::new();
    for t in 0..cycles {
        s.fires_at_into(t, &mut buf);
        for &c in &buf {
            per_core[c] += 1;
        }
    }
    for (core, &fires) in per_core.iter().enumerate() {
        let observed = fires as f64 / cycles as f64;
        assert!(
            (observed - 0.1).abs() < 4.5 * stderr(0.1, cycles),
            "core {core}: observed {observed}"
        );
    }
}

#[test]
fn lag_one_cycle_correlation_is_negligible() {
    // P(core fires at t+1 | it fired at t) ≈ P(fire) for i.i.d. draws.
    let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.3 }, 8, 42);
    let cycles = 60_000u64;
    let sets = fire_sets(&s, cycles + 1);
    let mut fires_after_fire = 0u64;
    let mut fires_total = 0u64;
    for t in 0..cycles as usize {
        for &c in &sets[t] {
            fires_total += 1;
            if sets[t + 1].contains(&c) {
                fires_after_fire += 1;
            }
        }
    }
    let conditional = fires_after_fire as f64 / fires_total as f64;
    assert!(
        (conditional - 0.3).abs() < 4.5 * stderr(0.3, fires_total),
        "lag-1 conditional rate {conditional} (over {fires_total} fires)"
    );
}

#[test]
fn pairwise_core_correlation_is_negligible() {
    // P(core b fires | core a fires, same cycle) ≈ P(fire): the
    // Binomial-count + uniform-subset factorisation must not introduce
    // within-cycle correlation beyond the exact product law.
    let s = InjectionSampler::new(InjectionProcess::Bernoulli { rate: 0.25 }, 16, 13);
    let cycles = 60_000u64;
    let sets = fire_sets(&s, cycles);
    let (a, b) = (3usize, 11usize);
    let mut a_fires = 0u64;
    let mut both = 0u64;
    for set in &sets {
        if set.contains(&a) {
            a_fires += 1;
            if set.contains(&b) {
                both += 1;
            }
        }
    }
    let conditional = both as f64 / a_fires as f64;
    assert!(
        (conditional - 0.25).abs() < 4.5 * stderr(0.25, a_fires),
        "P(b | a) = {conditional} over {a_fires} trials"
    );
}

#[test]
fn workload_event_rate_matches_offered_load_end_to_end() {
    // Through the full UniformRandom path (fire + destination draws):
    // total events ≈ cores × cycles × rate.
    for &rate in &[0.002, 0.05] {
        let mut w = UniformRandom::new(
            64,
            4,
            0.2,
            InjectionProcess::Bernoulli { rate },
            64,
            0x5177,
        );
        let cycles = 5_000u64;
        let total: usize = (0..cycles).map(|t| w.generate(t).len()).sum();
        let n = 64.0 * cycles as f64;
        let expected = n * rate;
        let tol = 4.5 * (n * rate * (1.0 - rate)).sqrt();
        assert!(
            ((total as f64) - expected).abs() < tol,
            "rate {rate}: {total} events, expected {expected} ± {tol}"
        );
    }
}

#[test]
fn skipping_cycles_leaves_the_remaining_stream_untouched() {
    // The fast-forward soundness property at the workload level: a
    // driver that only generates the cycles next_event_at points at
    // sees exactly the events a cycle-by-cycle driver sees.
    let make = || {
        UniformRandom::new(
            64,
            4,
            0.2,
            InjectionProcess::Bernoulli { rate: 0.0004 },
            64,
            99,
        )
    };
    let mut dense = make();
    let mut dense_events = Vec::new();
    for t in 0..20_000u64 {
        dense_events.extend(dense.generate(t));
    }

    let mut skipping = make();
    let mut skipped_events = Vec::new();
    let mut t = 0u64;
    while t < 20_000 {
        let next = skipping.next_event_at(t).unwrap();
        if next >= 20_000 {
            break;
        }
        let events = skipping.generate(next);
        assert!(
            !events.is_empty() || next > t,
            "next_event_at may only return quiet cycles at its horizon"
        );
        skipped_events.extend(events);
        t = next + 1;
    }
    assert_eq!(dense_events, skipped_events);
    assert!(!dense_events.is_empty(), "sanity: the window saw traffic");
}
