//! Property-based tests of the workload generators.

use proptest::prelude::*;

use wimnet_traffic::patterns::PatternWorkload;
use wimnet_traffic::{
    Endpoint, InjectionProcess, Trace, TrafficPattern, UniformRandom, Workload,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Uniform random: all events in range, no self traffic, memory
    /// fraction statistically respected.
    #[test]
    fn uniform_random_events_are_valid(
        cores in 2usize..128,
        stacks in 1usize..8,
        memory in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut w = UniformRandom::new(
            cores,
            stacks,
            memory,
            InjectionProcess::Saturation,
            8,
            seed,
        );
        let mut mem_count = 0usize;
        let mut total = 0usize;
        for now in 0..50 {
            for e in w.generate(now) {
                total += 1;
                let Endpoint::Core(src) = e.src else {
                    return Err(TestCaseError::fail("non-core source"));
                };
                prop_assert!(src < cores);
                match e.dest {
                    Endpoint::Core(d) => {
                        prop_assert!(d < cores);
                        prop_assert_ne!(d, src);
                    }
                    Endpoint::Memory(m) => {
                        prop_assert!(m < stacks);
                        mem_count += 1;
                    }
                }
            }
        }
        prop_assert_eq!(total, cores * 50, "saturation fires every core");
        let frac = mem_count as f64 / total as f64;
        // Binomial 4.5-sigma bound (small systems draw few samples).
        let sigma = (memory * (1.0 - memory) / total as f64).sqrt();
        let bound = (4.5 * sigma).max(0.02);
        prop_assert!(
            (frac - memory).abs() < bound,
            "memory {frac} vs {memory} (bound {bound})"
        );
    }

    /// Memory affinity: bias 1.0 sends every access to the home stack.
    #[test]
    fn full_affinity_pins_memory_to_home(
        cores in 2usize..32,
        stacks in 2usize..6,
        seed in any::<u64>(),
    ) {
        let home: Vec<usize> = (0..cores).map(|c| c % stacks).collect();
        let mut w = UniformRandom::new(
            cores,
            stacks,
            1.0, // memory only
            InjectionProcess::Saturation,
            4,
            seed,
        )
        .with_memory_affinity(1.0, home.clone());
        for now in 0..20 {
            for e in w.generate(now) {
                let Endpoint::Core(src) = e.src else { unreachable!() };
                let Endpoint::Memory(m) = e.dest else {
                    return Err(TestCaseError::fail("memory only"));
                };
                prop_assert_eq!(m, home[src]);
            }
        }
    }

    /// Bit-permutation patterns are permutations for power-of-two sizes.
    #[test]
    fn bit_patterns_permute(
        bits in 2u32..7,
        pattern_idx in 0usize..3,
    ) {
        use rand::SeedableRng;
        let cores = 1usize << bits;
        let p = [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::Shuffle,
        ][pattern_idx].clone();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut dests: Vec<usize> =
            (0..cores).map(|s| p.dest(s, cores, &mut rng)).collect();
        dests.sort_unstable();
        dests.dedup();
        prop_assert_eq!(dests.len(), cores);
    }

    /// Pattern workloads generate valid events for any square system.
    #[test]
    fn pattern_workloads_are_valid(
        side in 2usize..9,
        memory in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let cores = side * side;
        let mut w = PatternWorkload::new(
            TrafficPattern::Transpose,
            cores,
            4,
            memory,
            InjectionProcess::Bernoulli { rate: 0.5 },
            16,
            seed,
        );
        for now in 0..30 {
            for e in w.generate(now) {
                let Endpoint::Core(s) = e.src else { unreachable!() };
                if let Endpoint::Core(d) = e.dest {
                    prop_assert_ne!(d, s, "transpose fixed points are skipped");
                    prop_assert!(d < cores);
                }
            }
        }
    }

    /// Trace record/replay is lossless for any generator configuration.
    #[test]
    fn traces_replay_losslessly(
        cores in 2usize..32,
        rate in 0.01f64..1.0,
        seed in any::<u64>(),
        cycles in 1u64..120,
    ) {
        let mut w = UniformRandom::new(
            cores,
            2,
            0.3,
            InjectionProcess::Bernoulli { rate },
            8,
            seed,
        );
        let trace = Trace::record(&mut w, cycles);
        let mut fresh = UniformRandom::new(
            cores,
            2,
            0.3,
            InjectionProcess::Bernoulli { rate },
            8,
            seed,
        );
        let mut replay = trace.replay();
        for now in 0..cycles {
            prop_assert_eq!(replay.generate(now), fresh.generate(now));
        }
    }
}
