//! The on-chip zigzag antenna (paper refs \[5\]\[11\]).
//!
//! §III.B: the chosen antenna must be compact (zigzag folding of the arms
//! beats a linear dipole), *non-directional* (WIs sit at arbitrary angles
//! across chips), CMOS-compatible (top-layer metal), and provide 16 GHz
//! of bandwidth around 60 GHz through typical dielectric packaging
//! materials.  The path-loss model below is the standard log-distance
//! form used for intra-package mm-wave links, with the exponent the
//! in-package dielectric measurements of ref \[11\] suggest.

use serde::{Deserialize, Serialize};

use crate::phy;

/// A millimetre-wave zigzag on-chip antenna.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZigzagAntenna {
    /// Centre frequency in GHz (paper: 60 GHz band).
    pub frequency_ghz: f64,
    /// Usable bandwidth in GHz (paper: 16 GHz, intra- and inter-chip).
    pub bandwidth_ghz: f64,
    /// Antenna gain in dBi (zigzag antennas are near-isotropic in the
    /// package plane).
    pub gain_dbi: f64,
    /// Footprint in mm² (top-metal zigzag, sub-mm arms at 60 GHz).
    pub area_mm2: f64,
    /// Log-distance path-loss exponent through the package dielectric.
    pub path_loss_exponent: f64,
    /// Reference path loss at 1 mm, in dB.
    pub reference_loss_db: f64,
}

impl ZigzagAntenna {
    /// The paper's antenna: 60 GHz, 16 GHz bandwidth, omnidirectional.
    /// The in-package line-of-sight exponent of 2.0 and 25 dB reference
    /// loss follow the intra/inter-chip measurements of ref \[11\].
    pub fn paper() -> Self {
        ZigzagAntenna {
            frequency_ghz: 60.0,
            bandwidth_ghz: 16.0,
            gain_dbi: 0.0,
            area_mm2: 0.2,
            path_loss_exponent: 2.0,
            reference_loss_db: 25.0,
        }
    }

    /// Wavelength in millimetres.
    pub fn wavelength_mm(&self) -> f64 {
        299.792_458 / self.frequency_ghz
    }

    /// Log-distance path loss in dB over `distance_mm`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_mm` is not positive.
    pub fn path_loss_db(&self, distance_mm: f64) -> f64 {
        assert!(distance_mm > 0.0, "distance must be positive");
        self.reference_loss_db
            + 10.0 * self.path_loss_exponent * distance_mm.log10()
    }

    /// Link SNR in dB for a transmit power of `tx_power_dbm` over
    /// `distance_mm` against a `noise_floor_dbm` integrated noise floor,
    /// including both antenna gains.
    pub fn link_snr_db(
        &self,
        tx_power_dbm: f64,
        distance_mm: f64,
        noise_floor_dbm: f64,
    ) -> f64 {
        tx_power_dbm + 2.0 * self.gain_dbi - self.path_loss_db(distance_mm)
            - noise_floor_dbm
    }

    /// Bit error rate of an OOK link at `distance_mm`.
    pub fn link_ber(
        &self,
        tx_power_dbm: f64,
        distance_mm: f64,
        noise_floor_dbm: f64,
    ) -> f64 {
        let snr_db = self.link_snr_db(tx_power_dbm, distance_mm, noise_floor_dbm);
        phy::ook_ber(phy::from_db(snr_db.max(0.0)))
    }

    /// The maximum distance at which the link still meets `target_ber`.
    pub fn range_for_ber(
        &self,
        tx_power_dbm: f64,
        noise_floor_dbm: f64,
        target_ber: f64,
    ) -> f64 {
        let needed_snr_db = phy::to_db(phy::snr_for_ber(target_ber));
        let budget_db =
            tx_power_dbm + 2.0 * self.gain_dbi - noise_floor_dbm - needed_snr_db;
        let exceedance = (budget_db - self.reference_loss_db)
            / (10.0 * self.path_loss_exponent);
        10f64.powf(exceedance)
    }
}

impl Default for ZigzagAntenna {
    fn default() -> Self {
        ZigzagAntenna::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A +5 dBm transmitter against a −82 dBm integrated noise floor —
    /// representative of the 65 nm OOK designs the paper cites.
    const TX_DBM: f64 = 5.0;
    const NOISE_DBM: f64 = -82.0;

    #[test]
    fn paper_antenna_parameters() {
        let a = ZigzagAntenna::paper();
        assert_eq!(a.frequency_ghz, 60.0);
        assert_eq!(a.bandwidth_ghz, 16.0);
        assert!((a.wavelength_mm() - 5.0).abs() < 0.01, "60 GHz ≈ 5 mm");
        assert_eq!(a, ZigzagAntenna::default());
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let a = ZigzagAntenna::paper();
        assert!(a.path_loss_db(10.0) > a.path_loss_db(1.0));
        // One decade of distance costs 10·n dB.
        let delta = a.path_loss_db(100.0) - a.path_loss_db(10.0);
        assert!((delta - 20.0).abs() < 1e-9);
    }

    #[test]
    fn package_scale_links_meet_the_paper_ber() {
        let a = ZigzagAntenna::paper();
        // Up to several centimetres — the span of the 4C4M package.
        for &d in &[5.0, 20.0, 60.0] {
            let ber = a.link_ber(TX_DBM, d, NOISE_DBM);
            assert!(ber < 1e-15, "BER {ber} at {d} mm");
        }
    }

    #[test]
    fn range_covers_the_multichip_package() {
        let a = ZigzagAntenna::paper();
        let range = a.range_for_ber(TX_DBM, NOISE_DBM, 1e-15);
        // A 4-chip package spans < 100 mm diagonally.
        assert!(range > 100.0, "range {range} mm");
    }

    #[test]
    fn ber_and_snr_are_consistent() {
        let a = ZigzagAntenna::paper();
        let snr_db = a.link_snr_db(TX_DBM, 30.0, NOISE_DBM);
        let ber = a.link_ber(TX_DBM, 30.0, NOISE_DBM);
        assert!((phy::ook_ber(phy::from_db(snr_db)) - ber).abs() < 1e-20);
    }

    #[test]
    #[should_panic]
    fn zero_distance_panics() {
        ZigzagAntenna::paper().path_loss_db(0.0);
    }
}
