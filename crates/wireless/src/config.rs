//! Shared channel/MAC configuration.

use wimnet_energy::EnergyModel;

/// Configuration of the shared 60 GHz channel and its MAC.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Number of wireless interfaces sharing the channel.
    pub radios: usize,
    /// Channel data rate in Gbps (paper: 16 Gbps sustained by the OOK
    /// transceiver of ref \[6\]).
    pub data_rate_gbps: f64,
    /// Flit width in bits (paper: 32).
    pub flit_bits: u32,
    /// Control packet header length in flits (identification and
    /// differentiation of data packets, §III.D).
    pub control_header_flits: u32,
    /// Flits per `(DestWI, PktID, NumFlits)` 3-tuple.
    pub tuple_flits: u32,
    /// Power-gate receivers that are not addressed by the current control
    /// packet (the paper's sleepy transceivers, ref \[17\]).  Disabled for
    /// the ablation study.
    pub sleepy_receivers: bool,
    /// Bit error rate of the channel.  The paper's link budget gives
    /// < 10⁻¹⁵; raising it exercises the retransmission path.
    pub ber: f64,
    /// RNG seed for bit-error injection.
    pub seed: u64,
    /// Technology energy constants (clock, per-bit energies, idle/sleep
    /// powers).
    pub energy: EnergyModel,
}

impl ChannelConfig {
    /// The paper's channel for `radios` wireless interfaces: 16 Gbps,
    /// 32-bit flits, one-flit header and tuples, sleepy receivers on,
    /// BER 10⁻¹⁵.
    pub fn paper(radios: usize) -> Self {
        ChannelConfig {
            radios,
            data_rate_gbps: 16.0,
            flit_bits: 32,
            control_header_flits: 1,
            tuple_flits: 1,
            sleepy_receivers: true,
            ber: 1e-15,
            seed: 0x5eed_0001,
            energy: EnergyModel::paper_65nm(),
        }
    }

    /// Clock cycles to serialise one flit on the channel, rounded up.
    ///
    /// At the paper's parameters: 32 bits / 16 Gbps = 2 ns = 5 cycles at
    /// 2.5 GHz.
    pub fn cycles_per_flit(&self) -> u64 {
        let seconds = f64::from(self.flit_bits) / (self.data_rate_gbps * 1e9);
        (seconds * self.energy.clock.hertz()).ceil() as u64
    }

    /// Control packet length in flits for `tuples` announced transfers.
    pub fn control_flits(&self, tuples: u32) -> u32 {
        self.control_header_flits + tuples * self.tuple_flits
    }

    /// Probability that a flit is corrupted at the configured BER.
    pub fn flit_error_probability(&self) -> f64 {
        crate::phy::flit_error_probability(self.ber, self.flit_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_serialisation_is_five_cycles_per_flit() {
        assert_eq!(ChannelConfig::paper(8).cycles_per_flit(), 5);
    }

    #[test]
    fn control_packet_sizes() {
        let c = ChannelConfig::paper(8);
        assert_eq!(c.control_flits(0), 1, "pass = header only");
        assert_eq!(c.control_flits(3), 4);
    }

    #[test]
    fn slower_channel_takes_longer_per_flit() {
        let mut c = ChannelConfig::paper(8);
        c.data_rate_gbps = 8.0;
        assert_eq!(c.cycles_per_flit(), 10);
    }

    #[test]
    fn paper_ber_gives_negligible_flit_errors() {
        let c = ChannelConfig::paper(8);
        assert!(c.flit_error_probability() < 1e-13);
    }
}
