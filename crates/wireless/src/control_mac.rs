//! The paper's proposed control-packet MAC (§III.D).
//!
//! Instead of circulating a token at the end of each transmission, each
//! WI broadcasts a **control packet** at the beginning of its turn.  The
//! control packet carries a header plus one `(DestWI, PktID, NumFlits)`
//! 3-tuple per transmit VC with data to send (the tuple count is bounded
//! by the WI's output VC count).  Because every WI hears the broadcast,
//! the next WI in the fixed sequence computes when the current
//! transmission ends and starts its own control packet exactly then —
//! contention never occurs.  The `PktID` lets the destination map flits
//! onto a reserved VC, so a WI may transmit a *partial* packet and finish
//! it in a later turn without breaking wormhole switching.  Receivers not
//! addressed by the control packet power-gate ("sleepy transceivers",
//! ref \[17\]) through the data phase.
//!
//! Flow control: `NumFlits` for a destination is capped by the buffer
//! space the destination's reserved VC has at control time.  The paper
//! achieves this with the broadcast control plane; the model reads the
//! same information from the engine's [`MediumView`], which is exactly
//! the state a broadcast credit scheme would distribute.
//!
//! # Quiescence and idle fast-forward
//!
//! With every WI transmit buffer empty and no scheduled data pending,
//! the turn machine is **view-independent**: every turn announces an
//! empty schedule (a header-only control packet — the paper's "pass"),
//! so the evolution is periodic — one pass every
//! `control_flits(0) × cycles_per_flit` cycles, rotating the turn
//! holder, with all receivers listening (sleepy gating only engages
//! during data phases, which idle turns never have).
//! [`ControlPacketMac::idle_advance`] realises that closed form for any
//! cycle count, bit-identically to full stepping under an all-empty
//! view (proven by replay in `tests/idle_replay.rs`); the bit-error RNG
//! is only consumed when data flits move, so resuming after a jump is
//! also bit-identical.  The MAC declines quiescence exactly while
//! `pending` transmissions exist.  See `docs/fast_forward.md` for the
//! full contract.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use wimnet_energy::EnergyCategory;
use wimnet_noc::radio::{MediumActions, MediumView, RadioId, SharedMedium};
use wimnet_noc::PacketId;

use crate::config::ChannelConfig;
use crate::MacStats;

/// One scheduled data-flit transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingFlit {
    complete_at: u64,
    from: RadioId,
    tx_vc: usize,
    to: RadioId,
    /// Receive VC reserved at control time (§III.D's PktID → VC map).
    rx_vc: usize,
}

/// Shadow of one receive VC used while building a schedule.
#[derive(Debug, Clone, Copy)]
struct ShadowVc {
    owner: Option<PacketId>,
    len: usize,
    capacity: usize,
}

/// Checkpointed dynamic state of a [`ControlPacketMac`] (the
/// configuration is rebuilt by the constructor and deliberately
/// excluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ControlMacState {
    rng: [u64; 4],
    next_holder: u64,
    turn_end: u64,
    control_until: u64,
    pending: VecDeque<PendingFlit>,
    participants: Vec<bool>,
    stats: MacStats,
}

/// The SOCC'17 control-packet MAC.
///
/// See the crate-level example for construction; attach with
/// [`wimnet_noc::Network::attach_medium`].
#[derive(Debug, Clone)]
pub struct ControlPacketMac {
    cfg: ChannelConfig,
    rng: SmallRng,
    /// WI that will broadcast the next control packet.
    next_holder: usize,
    /// Cycle at which the channel becomes free again.
    turn_end: u64,
    /// End of the in-flight control broadcast (all receivers awake).
    control_until: u64,
    /// Scheduled data transmissions, time-ordered.
    pending: VecDeque<PendingFlit>,
    /// Radios participating in the current data phase (awake).
    participants: Vec<bool>,
    stats: MacStats,
    /// Turn-interval recording for trace export (`Some` once
    /// [`SharedMedium::set_trace_enabled`] asked for it).  Purely
    /// additive side state — nothing in the MAC reads it back, so
    /// recording cannot change a decision or an RNG draw — and excluded
    /// from [`ControlMacState`] snapshots (observational, not engine
    /// state).  Spans are the *scheduled* data windows; retransmissions
    /// extend the real turn but not the record.
    turn_log: Option<Vec<wimnet_telemetry::TurnRecord>>,
}

impl ControlPacketMac {
    /// Creates the MAC for `cfg.radios` wireless interfaces.
    pub fn new(cfg: ChannelConfig) -> Self {
        let radios = cfg.radios;
        ControlPacketMac {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            next_holder: 0,
            turn_end: 0,
            control_until: 0,
            pending: VecDeque::new(),
            participants: vec![false; radios],
            stats: MacStats::default(),
            turn_log: None,
        }
    }

    /// MAC statistics (turns, passes, control/data flits,
    /// retransmissions).
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    fn charge_per_cycle_power(&self, now: u64, actions: &mut MediumActions) {
        let n = self.cfg.radios;
        if n == 0 {
            return;
        }
        let in_data_phase = now >= self.control_until && now < self.turn_end;
        let (awake, asleep) = if in_data_phase && self.cfg.sleepy_receivers {
            let awake = self.participants.iter().filter(|&&p| p).count();
            (awake, n - awake)
        } else {
            // Control broadcasts and idle gaps keep everyone listening.
            (n, 0)
        };
        if awake > 0 {
            actions.energy(
                EnergyCategory::WirelessIdle,
                self.cfg.energy.wireless_idle_over(1) * awake as f64,
            );
        }
        if asleep > 0 {
            actions.energy(
                EnergyCategory::WirelessSleep,
                self.cfg.energy.wireless_sleep_over(1) * asleep as f64,
            );
        }
    }

    /// Energy of one header-only (pass) control broadcast: one TX plus
    /// `radios − 1` decodes — the `tuples = 0` case of the charge
    /// [`ControlPacketMac::start_turn`] computes.
    fn pass_energy(&self) -> wimnet_energy::Energy {
        let control_bits =
            u64::from(self.cfg.control_flits(0)) * u64::from(self.cfg.flit_bits);
        self.cfg.energy.wireless_tx(control_bits)
            + self.cfg.energy.wireless_rx(control_bits) * (self.cfg.radios - 1) as f64
    }

    /// Advances the idle turn machine by `cycles` cycles starting at
    /// `now`, emitting exactly the per-cycle actions that many
    /// [`SharedMedium::step`] calls under an all-empty view would.
    ///
    /// The idle evolution is closed-form: pass cycles sit at
    /// `first + i · span` where `first` is `max(turn_end, now)` and
    /// `span = control_flits(0) × cycles_per_flit` is the header-only
    /// broadcast time; every idle turn has `control_until == turn_end`,
    /// so all receivers listen and the sleepy gating never engages.
    /// Both the state update (holder rotation, turn timers,
    /// participants, stats) and the energy charges are O(1) in `cycles`:
    /// the pass count follows from arithmetic, and the charges land as
    /// a handful of repeated-charge actions — the meter's exact
    /// accumulator makes the per-category sum independent of charge
    /// order and batching, so this is bit-identical to per-cycle replay
    /// (see `docs/fast_forward.md`).
    ///
    /// # Panics
    ///
    /// Debug-asserts [`SharedMedium::is_quiescent`]: calling this with
    /// scheduled data pending would skip deliveries.
    pub fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        let n = self.cfg.radios;
        if n == 0 || cycles == 0 {
            return;
        }
        debug_assert!(self.is_quiescent(), "idle_advance with data pending");
        let span = u64::from(self.cfg.control_flits(0)) * self.cfg.cycles_per_flit();
        // `.max(1)`: a degenerate zero-cycle header means `step` starts
        // a fresh pass every cycle.
        let period = span.max(1);
        let first = self.turn_end.max(now);
        let end = now + cycles;
        let idle_one = self.cfg.energy.wireless_idle_over(1);
        // Tail of a pre-existing turn (`[now, min(first, end))`): the
        // per-cycle power is uniform within at most two segments split
        // at `control_until` — the control broadcast keeps everyone
        // listening, a leftover data window applies the sleepy
        // participant split with the still-unchanged phase timers.
        let tail_end = first.min(end);
        if tail_end > now {
            let ctrl_end = self.control_until.clamp(now, tail_end);
            actions.energy_repeated(
                EnergyCategory::WirelessIdle,
                idle_one * n as f64,
                ctrl_end - now,
            );
            let data_cycles = tail_end - ctrl_end;
            if data_cycles > 0 {
                let (awake, asleep) = if self.cfg.sleepy_receivers {
                    let awake = self.participants.iter().filter(|&&p| p).count();
                    (awake, n - awake)
                } else {
                    (n, 0)
                };
                if awake > 0 {
                    actions.energy_repeated(
                        EnergyCategory::WirelessIdle,
                        idle_one * awake as f64,
                        data_cycles,
                    );
                }
                if asleep > 0 {
                    actions.energy_repeated(
                        EnergyCategory::WirelessSleep,
                        self.cfg.energy.wireless_sleep_over(1) * asleep as f64,
                        data_cycles,
                    );
                }
            }
        }
        // Idle turns from `first` on: passes sit at `first + i · period`
        // clipped to `[now, end)` (`first ≥ now` by construction), and
        // control and data phases coincide (`control_until == turn_end`)
        // so everyone listens every cycle.
        let passes = if end > first { (end - 1 - first) / period + 1 } else { 0 };
        actions.energy_repeated(EnergyCategory::WirelessControl, self.pass_energy(), passes);
        if end > first {
            actions.energy_repeated(
                EnergyCategory::WirelessIdle,
                idle_one * n as f64,
                end - first,
            );
        }
        if passes > 0 {
            self.stats.turns += passes;
            self.stats.passes += passes;
            self.stats.control_flits += passes * u64::from(self.cfg.control_flits(0));
            let last = first + (passes - 1) * period;
            self.control_until = last + span;
            self.turn_end = last + span;
            let last_holder = ((self.next_holder as u64 + passes - 1) % n as u64) as usize;
            self.next_holder = ((self.next_holder as u64 + passes) % n as u64) as usize;
            self.participants.iter_mut().for_each(|p| *p = false);
            self.participants[last_holder] = true;
        }
    }

    /// Builds and announces the schedule for `holder`'s turn starting at
    /// `now`.  Returns `true` if the turn carries data.
    fn start_turn(&mut self, now: u64, holder: usize, view: &MediumView, actions: &mut MediumActions) -> bool {
        let cpf = self.cfg.cycles_per_flit();
        let n = self.cfg.radios;
        // Shadow of every radio's receive side.
        let mut shadow: Vec<Vec<ShadowVc>> = view
            .radios()
            .iter()
            .map(|r| {
                r.rx
                    .iter()
                    .map(|vc| ShadowVc {
                        owner: vc.owner,
                        len: vc.len,
                        capacity: vc.capacity,
                    })
                    .collect()
            })
            .collect();

        // Tuples: (tx_vc, flits, destination, reserved rx VC).
        let mut tuples: Vec<(usize, u32, RadioId, usize)> = Vec::new();
        for (tx_vc, tv) in view.radio(RadioId(holder)).tx.iter().enumerate() {
            let Some((front, target)) = tv.front else { continue };
            if tv.front_run_len == 0 {
                continue;
            }
            let rx = &mut shadow[target.index()];
            let is_head = front.kind.is_head();
            let slot = if is_head {
                rx.iter()
                    .position(|vc| vc.owner.is_none() && vc.len < vc.capacity)
            } else {
                rx.iter()
                    .position(|vc| vc.owner == Some(front.packet) && vc.len < vc.capacity)
            };
            let Some(slot) = slot else { continue };
            let space = rx[slot].capacity - rx[slot].len;
            let count = tv.front_run_len.min(space) as u32;
            if count == 0 {
                continue;
            }
            // Update the shadow: the destination reserves the VC for
            // PktID until the tail arrives (§III.D).
            let delivers_tail =
                tv.front_run_has_tail && count as usize == tv.front_run_len;
            rx[slot].len += count as usize;
            rx[slot].owner = if delivers_tail { None } else { Some(front.packet) };
            tuples.push((tx_vc, count, target, slot));
        }

        // Control broadcast: header + one flit per tuple, heard by all.
        let control_flits = self.cfg.control_flits(tuples.len() as u32);
        let control_bits =
            u64::from(control_flits) * u64::from(self.cfg.flit_bits);
        actions.energy(
            EnergyCategory::WirelessControl,
            self.cfg.energy.wireless_tx(control_bits)
                + self.cfg.energy.wireless_rx(control_bits) * (n - 1) as f64,
        );
        self.stats.control_flits += u64::from(control_flits);
        self.stats.turns += 1;

        let data_start = now + u64::from(control_flits) * cpf;
        self.control_until = data_start;
        self.participants.iter_mut().for_each(|p| *p = false);
        self.participants[holder] = true;

        if tuples.is_empty() {
            self.stats.passes += 1;
            self.turn_end = data_start;
            return false;
        }
        let mut t = data_start;
        for &(tx_vc, count, to, rx_vc) in &tuples {
            self.participants[to.index()] = true;
            for _ in 0..count {
                t += cpf;
                self.pending.push_back(PendingFlit {
                    complete_at: t,
                    from: RadioId(holder),
                    tx_vc,
                    to,
                    rx_vc,
                });
            }
        }
        self.turn_end = t;
        true
    }
}

impl SharedMedium for ControlPacketMac {
    fn step(&mut self, now: u64, view: &MediumView, actions: &mut MediumActions) {
        if self.cfg.radios == 0 {
            return;
        }
        debug_assert_eq!(view.len(), self.cfg.radios, "radio count mismatch");

        // Start the next turn the moment the channel frees up.
        if now >= self.turn_end && self.pending.is_empty() {
            let holder = self.next_holder;
            self.next_holder = (self.next_holder + 1) % self.cfg.radios;
            let carries_data = self.start_turn(now, holder, view, actions);
            if carries_data {
                if let Some(log) = &mut self.turn_log {
                    log.push(wimnet_telemetry::TurnRecord {
                        radio: holder as u64,
                        start: now,
                        end: self.turn_end,
                        flits: self.pending.len() as u64,
                    });
                }
            }
        }

        // Deliver data flits whose serialisation completes this cycle.
        while let Some(&front) = self.pending.front() {
            if front.complete_at > now {
                break;
            }
            self.pending.pop_front();
            let bits = u64::from(self.cfg.flit_bits);
            if self.rng.gen::<f64>() < self.cfg.flit_error_probability() {
                // Corrupted: burn the TX energy, shift the rest of the
                // schedule by one flit time and retry in order.
                actions.energy(
                    EnergyCategory::WirelessTx,
                    self.cfg.energy.wireless_tx(bits),
                );
                self.stats.retransmissions += 1;
                let cpf = self.cfg.cycles_per_flit();
                let mut retry = front;
                retry.complete_at = now + cpf;
                for p in self.pending.iter_mut() {
                    p.complete_at += cpf;
                }
                self.pending.push_front(retry);
                self.turn_end += cpf;
                continue;
            }
            actions.energy(
                EnergyCategory::WirelessTx,
                self.cfg.energy.wireless_tx(bits),
            );
            actions.energy(
                EnergyCategory::WirelessRx,
                self.cfg.energy.wireless_rx(bits),
            );
            actions.transmit(front.from, front.tx_vc, front.rx_vc);
            self.stats.data_flits += 1;
        }

        self.charge_per_cycle_power(now, actions);
    }

    fn name(&self) -> &str {
        "control-packet-mac"
    }

    fn is_quiescent(&self) -> bool {
        // With no scheduled data pending and every TX buffer empty (the
        // engine's precondition), every turn announces an empty
        // schedule regardless of receive-side state, so the turn
        // machine evolves view-independently and `idle_advance` replays
        // it exactly.  Pending deliveries (and their bit-error draws)
        // pin the MAC to full stepping.
        self.pending.is_empty()
    }

    fn idle_step(&mut self, now: u64, actions: &mut MediumActions) {
        ControlPacketMac::idle_advance(self, now, 1, actions);
    }

    fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        ControlPacketMac::idle_advance(self, now, cycles, actions);
    }

    fn mac_counters(&self) -> wimnet_telemetry::MacCounters {
        wimnet_telemetry::MacCounters {
            turns: self.stats.turns,
            passes: self.stats.passes,
            control_flits: self.stats.control_flits,
            data_flits: self.stats.data_flits,
            collisions: self.stats.retransmissions,
        }
    }

    fn set_trace_enabled(&mut self, on: bool) {
        self.turn_log = on.then(Vec::new);
    }

    fn drain_turn_records(&mut self, out: &mut Vec<wimnet_telemetry::TurnRecord>) {
        if let Some(log) = &mut self.turn_log {
            out.append(log);
        }
    }

    fn state_value(&self) -> Value {
        ControlMacState {
            rng: self.rng.state(),
            next_holder: self.next_holder as u64,
            turn_end: self.turn_end,
            control_until: self.control_until,
            pending: self.pending.clone(),
            participants: self.participants.clone(),
            stats: self.stats,
        }
        .to_value()
    }

    fn restore_state_value(&mut self, v: &Value) -> Result<(), serde::Error> {
        let s = ControlMacState::from_value(v)?;
        if s.participants.len() != self.cfg.radios {
            return Err(serde::Error::msg(format!(
                "participant vector sized {} for {} radios",
                s.participants.len(),
                self.cfg.radios
            )));
        }
        if s.next_holder as usize >= self.cfg.radios.max(1) {
            return Err(serde::Error::msg(format!(
                "next holder {} out of range for {} radios",
                s.next_holder, self.cfg.radios
            )));
        }
        self.rng = SmallRng::from_state(s.rng);
        self.next_holder = s.next_holder as usize;
        self.turn_end = s.turn_end;
        self.control_until = s.control_until;
        self.pending = s.pending;
        self.participants = s.participants;
        self.stats = s.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_noc::radio::{MediumAction, RadioView, RxVcView, TxVcView};
    use wimnet_noc::{Flit, FlitKind};
    use wimnet_topology::NodeId;

    fn flit(packet: u64, kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            seq: 0,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    fn empty_radio(id: usize, vcs: usize) -> RadioView {
        RadioView {
            id: RadioId(id),
            node: NodeId(id),
            tx: vec![
                TxVcView {
                    front: None,
                    len: 0,
                    front_run_len: 0,
                    front_run_has_tail: false,
                };
                vcs
            ],
            rx: vec![RxVcView { owner: None, len: 0, capacity: 16 }; vcs],
        }
    }

    /// Two radios; radio 0 has an 8-flit whole packet for radio 1.
    fn loaded_view() -> MediumView {
        let mut r0 = empty_radio(0, 2);
        r0.tx[0] = TxVcView {
            front: Some((flit(7, FlitKind::Head), RadioId(1))),
            len: 8,
            front_run_len: 8,
            front_run_has_tail: true,
        };
        MediumView::new(vec![r0, empty_radio(1, 2)])
    }

    fn idle_view() -> MediumView {
        MediumView::new(vec![empty_radio(0, 2), empty_radio(1, 2)])
    }

    fn count_transmits(actions: &MediumActions) -> usize {
        actions
            .actions()
            .iter()
            .filter(|a| matches!(a, MediumAction::Transmit { .. }))
            .count()
    }

    #[test]
    fn idle_channel_rotates_passes() {
        let mut mac = ControlPacketMac::new(ChannelConfig::paper(2));
        let view = idle_view();
        // Header-only control packet = 5 cycles per pass.
        for now in 0..20u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 0);
        }
        assert_eq!(mac.stats().turns, 4, "one pass per 5 cycles");
        assert_eq!(mac.stats().passes, 4);
        assert_eq!(mac.stats().control_flits, 4);
    }

    #[test]
    fn schedule_announces_and_delivers_at_channel_rate() {
        let mut mac = ControlPacketMac::new(ChannelConfig::paper(2));
        let view = loaded_view();
        let mut delivered = Vec::new();
        for now in 0..120u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            for a in actions.actions() {
                if let MediumAction::Transmit { from, tx_vc, .. } = a {
                    assert_eq!((*from, *tx_vc), (RadioId(0), 0));
                    delivered.push(now);
                }
            }
            if delivered.len() == 8 {
                break;
            }
        }
        assert_eq!(delivered.len(), 8);
        // Control: header + 1 tuple = 2 flits = 10 cycles; first data
        // flit completes 5 cycles later.
        assert_eq!(delivered[0], 15);
        // One flit per 5 cycles afterwards.
        for w in delivered.windows(2) {
            assert_eq!(w[1] - w[0], 5);
        }
        assert_eq!(mac.stats().data_flits, 8);
        assert_eq!(mac.stats().passes, 0);
    }

    #[test]
    fn partial_packets_are_capped_by_receiver_space() {
        let cfg = ChannelConfig::paper(2);
        let mut mac = ControlPacketMac::new(cfg);
        let mut r0 = empty_radio(0, 2);
        // 12 flits buffered, but the receiver VC has only 4 slots free.
        r0.tx[0] = TxVcView {
            front: Some((flit(9, FlitKind::Head), RadioId(1))),
            len: 12,
            front_run_len: 12,
            front_run_has_tail: false,
        };
        let mut r1 = empty_radio(1, 2);
        for vc in r1.rx.iter_mut() {
            vc.len = 12; // 4 free of 16
        }
        let view = MediumView::new(vec![r0, r1]);
        let mut times = Vec::new();
        for now in 0..200u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            for _ in 0..count_transmits(&actions) {
                times.push(now);
            }
        }
        // Each of radio 0's turns may announce at most 4 flits (the free
        // receiver space); the static view never drains, so every
        // complete turn sends exactly 4.  Split deliveries into bursts
        // at gaps larger than one flit time and check all complete
        // bursts.
        assert!(!times.is_empty());
        let mut bursts = vec![1usize];
        for w in times.windows(2) {
            if w[1] - w[0] > 5 {
                bursts.push(1);
            } else {
                *bursts.last_mut().expect("non-empty") += 1;
            }
        }
        let complete = &bursts[..bursts.len() - 1];
        assert!(!complete.is_empty());
        assert!(
            complete.iter().all(|&b| b == 4),
            "each complete turn moves 4 flits: {bursts:?}"
        );
    }

    #[test]
    fn no_receiver_space_means_pass_not_overflow() {
        let cfg = ChannelConfig::paper(2);
        let mut mac = ControlPacketMac::new(cfg);
        let mut r0 = empty_radio(0, 2);
        r0.tx[0] = TxVcView {
            front: Some((flit(9, FlitKind::Head), RadioId(1))),
            len: 8,
            front_run_len: 8,
            front_run_has_tail: true,
        };
        let mut r1 = empty_radio(1, 2);
        for vc in r1.rx.iter_mut() {
            vc.len = 16; // completely full
        }
        let view = MediumView::new(vec![r0, r1]);
        for now in 0..50u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 0);
        }
        assert!(mac.stats().passes > 0);
    }

    #[test]
    fn sleepy_receivers_save_energy_on_data_phases() {
        let run = |sleepy: bool| {
            let mut cfg = ChannelConfig::paper(4);
            cfg.sleepy_receivers = sleepy;
            let mut mac = ControlPacketMac::new(cfg);
            let mut r0 = empty_radio(0, 2);
            r0.tx[0] = TxVcView {
                front: Some((flit(7, FlitKind::Head), RadioId(1))),
                len: 16,
                front_run_len: 16,
                front_run_has_tail: true,
            };
            let view = MediumView::new(vec![
                r0,
                empty_radio(1, 2),
                empty_radio(2, 2),
                empty_radio(3, 2),
            ]);
            let mut idle = 0.0;
            let mut sleep = 0.0;
            for now in 0..200u64 {
                let mut actions = MediumActions::new();
                mac.step(now, &view, &mut actions);
                for a in actions.actions() {
                    if let MediumAction::Energy { category, energy } = a {
                        match category {
                            EnergyCategory::WirelessIdle => idle += energy.picojoules(),
                            EnergyCategory::WirelessSleep => sleep += energy.picojoules(),
                            _ => {}
                        }
                    }
                }
            }
            (idle, sleep)
        };
        let (idle_sleepy, sleep_sleepy) = run(true);
        let (idle_awake, sleep_awake) = run(false);
        assert!(sleep_awake == 0.0);
        assert!(sleep_sleepy > 0.0, "radios 2,3 must sleep through data");
        assert!(
            idle_sleepy < idle_awake,
            "sleepy mode must reduce idle listening energy"
        );
    }

    #[test]
    fn injected_bit_errors_cause_in_order_retransmissions() {
        let mut cfg = ChannelConfig::paper(2);
        cfg.ber = 0.05; // about 80% flit error rate — retries all but certain
        cfg.seed = 42;
        let mut mac = ControlPacketMac::new(cfg);
        let view = loaded_view();
        let mut delivered = 0;
        for now in 0..2000u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            delivered += count_transmits(&actions);
            if delivered == 8 {
                break;
            }
        }
        assert_eq!(delivered, 8, "all flits eventually deliver");
        assert!(
            mac.stats().retransmissions > 0,
            "with 6% flit errors and 8 flits, expect at least one retry \
             (seed-dependent but fixed)"
        );
    }

    #[test]
    fn turn_order_is_the_wi_sequence() {
        let mut mac = ControlPacketMac::new(ChannelConfig::paper(3));
        let view = MediumView::new(vec![
            empty_radio(0, 1),
            empty_radio(1, 1),
            empty_radio(2, 1),
        ]);
        // Passes rotate 0, 1, 2, 0, ... at 5 cycles each.
        for now in 0..30u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
        }
        assert_eq!(mac.stats().turns, 6);
    }
}
