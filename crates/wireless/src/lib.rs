//! The 60 GHz mm-wave wireless interconnect: physical layer and MAC.
//!
//! This crate supplies everything §III.B–§III.D of the paper describe:
//!
//! * [`antenna`] — the zigzag on-chip antenna (paper refs \[5\]\[11\]):
//!   compact, CMOS-compatible, non-directional, 16 GHz of bandwidth
//!   around 60 GHz, with a millimetre-wave path-loss model.
//! * [`transceiver`] — the non-coherent OOK transceiver adopted from ref
//!   \[6\]: 16 Gbps, 2.3 pJ/bit, BER < 10⁻¹⁵, 0.3 mm², with power-gated
//!   ("sleepy", ref \[17\]) receiver states.
//! * [`phy`] — non-coherent OOK SNR/BER relations and flit-error
//!   probabilities, used both to validate the link budget and to inject
//!   bit errors for robustness experiments.
//! * [`control_mac`] — **the paper's proposed MAC**: each WI broadcasts a
//!   control packet carrying `(DestWI, PktID, NumFlits)` 3-tuples at the
//!   start of its turn, enabling partial packet transmission while
//!   preserving wormhole integrity, and letting non-addressed receivers
//!   sleep through the data phase.
//! * [`token_mac`] — the baseline token MAC (ref \[7\]): the token holder
//!   may transmit only *whole* packets, which inflates WI buffer
//!   requirements and hence static power.
//! * [`parallel_mac`] — concurrent per-WI links: the channel model the
//!   paper's *evaluation* magnitudes imply (see DESIGN.md §3 on the
//!   §III.D ↔ §IV contradiction).
//!
//! All media implement [`wimnet_noc::SharedMedium`] and plug into the
//! engine with [`wimnet_noc::Network::attach_medium`].
//!
//! # Idle fast-forward
//!
//! All three media are **quiescence-capable**: when every WI transmit
//! buffer is empty and nothing is in flight, their idle evolution is
//! view-independent — the token machine passes periodically, the
//! control-packet machine broadcasts header-only passes periodically,
//! and the parallel links merely rotate their round-robin pointer — so
//! the engine may skip idle stretches while replaying state changes
//! and energy charges bit-identically
//! ([`wimnet_noc::SharedMedium::is_quiescent`] /
//! [`wimnet_noc::SharedMedium::idle_step`]; closed-form
//! [`ControlPacketMac::idle_advance`] / [`TokenMac::idle_advance`]).
//! The replay obligation is proven property-based in
//! `tests/idle_replay.rs`; the full contract lives in
//! `docs/fast_forward.md`.
//!
//! # Example
//!
//! ```
//! use wimnet_wireless::{ChannelConfig, ControlPacketMac};
//!
//! let cfg = ChannelConfig::paper(8); // 8 wireless interfaces
//! // 32-bit flits on a 16 Gbps channel at 2.5 GHz: 5 cycles per flit.
//! assert_eq!(cfg.cycles_per_flit(), 5);
//! let mac = ControlPacketMac::new(cfg);
//! assert_eq!(mac.stats().turns, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod config;
pub mod control_mac;
pub mod parallel_mac;
pub mod phy;
pub mod token_mac;
pub mod transceiver;

pub use antenna::ZigzagAntenna;
pub use config::ChannelConfig;
pub use control_mac::ControlPacketMac;
pub use parallel_mac::ParallelMac;
pub use phy::{flit_error_probability, ook_ber, snr_for_ber};
pub use token_mac::TokenMac;
pub use transceiver::TransceiverSpec;

/// Shared MAC bookkeeping exposed by both MAC implementations.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize,
)]
pub struct MacStats {
    /// Completed transmission turns (control MAC) or token visits
    /// (token MAC).
    pub turns: u64,
    /// Turns that carried no data (header-only control packet / token
    /// pass).
    pub passes: u64,
    /// Control or token flits broadcast.
    pub control_flits: u64,
    /// Data flits delivered over the channel.
    pub data_flits: u64,
    /// Flits corrupted by channel errors and retransmitted.
    pub retransmissions: u64,
}
