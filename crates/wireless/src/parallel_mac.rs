//! Concurrent per-WI wireless links — the paper's *evaluation* model.
//!
//! §III.D describes a single serialized channel, but the magnitudes in
//! §IV (Fig 2 reports ≈ 12 Gbps of delivered bandwidth *per core* on a
//! 64-core wireless system, i.e. hundreds of Gbps in aggregate) are only
//! achievable if each WI's transceiver operates as a dedicated
//! single-hop link with transmissions proceeding concurrently — e.g.
//! via channelisation of the antenna's 16 GHz band across WI pairs.
//! This medium implements that model: every WI may transmit and receive
//! simultaneously (full-duplex transceiver paths), each WI moving up to
//! `flits_per_cycle` flits per cycle, with control-packet semantics kept
//! for per-packet scheduling overhead and sleepy-receiver accounting.
//!
//! Use [`crate::ControlPacketMac`] / [`crate::TokenMac`] for the
//! faithful serialized §III.D channel (the MAC ablation); use this
//! medium to regenerate the paper's figures.  See `DESIGN.md` §3 and
//! `EXPERIMENTS.md` for the full discrepancy discussion.
//!
//! # Quiescence and idle fast-forward
//!
//! With every TX buffer empty, an idle cycle only saturates the
//! per-WI bandwidth credits, rotates the round-robin pointer and
//! charges constant transceiver power; once the credits have hit their
//! cap the evolution is view-independent and
//! [`SharedMedium::idle_step`] replays it exactly.  All three media in
//! this crate are now fast-forwardable — see `docs/fast_forward.md`
//! for the shared contract.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use wimnet_energy::EnergyCategory;
use wimnet_noc::radio::{MediumActions, MediumView, RadioId, SharedMedium};
use wimnet_noc::PacketId;

use crate::config::ChannelConfig;
use crate::MacStats;

/// Shadow of one receive VC while scheduling a cycle.
#[derive(Debug, Clone, Copy)]
struct ShadowVc {
    owner: Option<PacketId>,
    len: usize,
    capacity: usize,
}

/// Checkpointed dynamic state of a [`ParallelMac`] (configuration and
/// the per-WI rate are rebuilt by the constructor and deliberately
/// excluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ParallelMacState {
    rng: [u64; 4],
    tx_credit: Vec<f64>,
    rx_credit: Vec<f64>,
    tx_vc_rr: Vec<usize>,
    wi_rr: u64,
    stats: MacStats,
}

/// Concurrent per-WI wireless links.
#[derive(Debug)]
pub struct ParallelMac {
    cfg: ChannelConfig,
    /// Per-WI link bandwidth in flits per cycle (default 1.0: the
    /// single-cycle hop the paper's evaluation implies).
    flits_per_cycle: f64,
    rng: SmallRng,
    tx_credit: Vec<f64>,
    rx_credit: Vec<f64>,
    tx_vc_rr: Vec<usize>,
    wi_rr: usize,
    stats: MacStats,
}

impl ParallelMac {
    /// Creates the medium with the default one-flit-per-cycle WI links.
    pub fn new(cfg: ChannelConfig) -> Self {
        ParallelMac::with_rate(cfg, 1.0)
    }

    /// Creates the medium with `flits_per_cycle` per-WI bandwidth.
    ///
    /// # Panics
    ///
    /// Panics unless `flits_per_cycle` is positive and finite.
    pub fn with_rate(cfg: ChannelConfig, flits_per_cycle: f64) -> Self {
        assert!(
            flits_per_cycle > 0.0 && flits_per_cycle.is_finite(),
            "per-WI rate must be positive"
        );
        let radios = cfg.radios;
        ParallelMac {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x009a_11e1),
            flits_per_cycle,
            tx_credit: vec![0.0; radios],
            rx_credit: vec![0.0; radios],
            tx_vc_rr: vec![0; radios],
            wi_rr: 0,
            cfg,
            stats: MacStats::default(),
        }
    }

    /// MAC statistics.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Per-WI link bandwidth in flits per cycle.
    pub fn rate(&self) -> f64 {
        self.flits_per_cycle
    }
}

impl SharedMedium for ParallelMac {
    fn step(&mut self, now: u64, view: &MediumView, actions: &mut MediumActions) {
        let n = self.cfg.radios;
        if n == 0 {
            return;
        }
        debug_assert_eq!(view.len(), n, "radio count mismatch");
        let _ = now;

        // Accrue link bandwidth. The cap of max(1, rate) forbids idle
        // WIs from banking multi-flit bursts: at rate 1.0 a WI moves at
        // most one flit per cycle, matching the single-hop link model.
        let cap = self.flits_per_cycle.max(1.0);
        for i in 0..n {
            self.tx_credit[i] = (self.tx_credit[i] + self.flits_per_cycle).min(cap);
            self.rx_credit[i] = (self.rx_credit[i] + self.flits_per_cycle).min(cap);
        }

        // Shadow receive state for this cycle's admissions.
        let mut shadow: Vec<Vec<ShadowVc>> = view
            .radios()
            .iter()
            .map(|r| {
                r.rx
                    .iter()
                    .map(|vc| ShadowVc {
                        owner: vc.owner,
                        len: vc.len,
                        capacity: vc.capacity,
                    })
                    .collect()
            })
            .collect();

        let mut active = vec![false; n];
        let flit_err = self.cfg.flit_error_probability();

        // Round-robin over WIs; each WI drains its TX VCs round-robin
        // while bandwidth and receiver space allow.
        for off in 0..n {
            let wi = (self.wi_rr + off) % n;
            let radio = view.radio(RadioId(wi));
            let vcs = radio.tx.len();
            if vcs == 0 {
                continue;
            }
            // Snapshot the rotation base: each TX VC is considered at
            // most once per cycle (the view's front is only valid for
            // one pop).
            let rr_base = self.tx_vc_rr[wi];
            let mut spins = 0;
            while self.tx_credit[wi] >= 1.0 && spins < vcs {
                let tx_vc = (rr_base + spins) % vcs;
                spins += 1;
                let Some((front, target)) = radio.tx[tx_vc].front else {
                    continue;
                };
                // Flits already scheduled from this VC this cycle would
                // change the front; one flit per VC per cycle keeps the
                // view honest.
                if self.rx_credit[target.index()] < 1.0 {
                    continue;
                }
                let rx = &mut shadow[target.index()];
                let is_head = front.kind.is_head();
                let slot = if is_head {
                    rx.iter()
                        .position(|vc| vc.owner.is_none() && vc.len < vc.capacity)
                } else {
                    rx.iter().position(|vc| {
                        vc.owner == Some(front.packet) && vc.len < vc.capacity
                    })
                };
                let Some(slot) = slot else { continue };

                // Charge the per-packet control broadcast when a head
                // flit opens a transfer: header + one tuple, decoded by
                // every WI.
                let bits = u64::from(self.cfg.flit_bits);
                if is_head {
                    let control_bits =
                        u64::from(self.cfg.control_flits(1)) * bits;
                    actions.energy(
                        EnergyCategory::WirelessControl,
                        self.cfg.energy.wireless_tx(control_bits)
                            + self.cfg.energy.wireless_rx(control_bits)
                                * (n - 1) as f64,
                    );
                    self.stats.control_flits +=
                        u64::from(self.cfg.control_flits(1));
                    self.stats.turns += 1;
                }

                if self.rng.gen::<f64>() < flit_err {
                    // Corrupted flit: energy burned, slot kept, retry
                    // next cycle (order preserved because nothing pops).
                    actions.energy(
                        EnergyCategory::WirelessTx,
                        self.cfg.energy.wireless_tx(bits),
                    );
                    self.stats.retransmissions += 1;
                    self.tx_credit[wi] -= 1.0;
                    active[wi] = true;
                    break;
                }

                rx[slot].len += 1;
                rx[slot].owner = if front.kind.is_tail() {
                    None
                } else {
                    Some(front.packet)
                };
                actions.energy(
                    EnergyCategory::WirelessTx,
                    self.cfg.energy.wireless_tx(bits),
                );
                actions.energy(
                    EnergyCategory::WirelessRx,
                    self.cfg.energy.wireless_rx(bits),
                );
                actions.transmit(RadioId(wi), tx_vc, slot);
                self.stats.data_flits += 1;
                self.tx_credit[wi] -= 1.0;
                self.rx_credit[target.index()] -= 1.0;
                active[wi] = true;
                active[target.index()] = true;
                self.tx_vc_rr[wi] = (tx_vc + 1) % vcs;
                // One flit per TX VC per cycle; try other VCs if budget
                // remains.
            }
        }
        self.wi_rr = (self.wi_rr + 1) % n;

        // Per-cycle transceiver power: busy WIs listen/drive, the rest
        // sleep when sleepy receivers are enabled.
        let awake = if self.cfg.sleepy_receivers {
            active.iter().filter(|&&a| a).count()
        } else {
            n
        };
        let asleep = n - awake;
        if awake > 0 {
            actions.energy(
                EnergyCategory::WirelessIdle,
                self.cfg.energy.wireless_idle_over(1) * awake as f64,
            );
        }
        if asleep > 0 {
            actions.energy(
                EnergyCategory::WirelessSleep,
                self.cfg.energy.wireless_sleep_over(1) * asleep as f64,
            );
        }
    }

    fn name(&self) -> &str {
        "parallel-wi-links"
    }

    fn is_quiescent(&self) -> bool {
        // With every TX buffer empty (the engine's precondition), a step
        // only (a) accrues bandwidth credit, (b) advances the WI
        // round-robin pointer and (c) charges constant idle/sleep
        // power.  Once the credit accumulators have saturated at their
        // cap, (a) is a no-op and `idle_step` replays (b) and (c)
        // exactly.
        let cap = self.flits_per_cycle.max(1.0);
        self.tx_credit.iter().all(|&c| c >= cap) && self.rx_credit.iter().all(|&c| c >= cap)
    }

    fn idle_step(&mut self, now: u64, actions: &mut MediumActions) {
        SharedMedium::idle_advance(self, now, 1, actions);
    }

    fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        let _ = now;
        let n = self.cfg.radios;
        if n == 0 || cycles == 0 {
            return;
        }
        // Mirror of `cycles` steps under an all-empty view: credits are
        // already saturated (is_quiescent), no WI transmits, the
        // rotation pointer advances modulo `n`, and the constant
        // transceiver power — all radios sleep in sleepy mode, all idle
        // otherwise — lands as one repeated charge per category.
        self.wi_rr = ((self.wi_rr as u64 + cycles) % n as u64) as usize;
        let awake = if self.cfg.sleepy_receivers { 0 } else { n };
        let asleep = n - awake;
        if awake > 0 {
            actions.energy_repeated(
                EnergyCategory::WirelessIdle,
                self.cfg.energy.wireless_idle_over(1) * awake as f64,
                cycles,
            );
        }
        if asleep > 0 {
            actions.energy_repeated(
                EnergyCategory::WirelessSleep,
                self.cfg.energy.wireless_sleep_over(1) * asleep as f64,
                cycles,
            );
        }
    }

    fn mac_counters(&self) -> wimnet_telemetry::MacCounters {
        // No turn structure here: every WI owns a dedicated channel, so
        // `turns`/`passes` stay zero and only the flit counters carry.
        wimnet_telemetry::MacCounters {
            turns: self.stats.turns,
            passes: self.stats.passes,
            control_flits: self.stats.control_flits,
            data_flits: self.stats.data_flits,
            collisions: self.stats.retransmissions,
        }
    }

    fn state_value(&self) -> Value {
        ParallelMacState {
            rng: self.rng.state(),
            tx_credit: self.tx_credit.clone(),
            rx_credit: self.rx_credit.clone(),
            tx_vc_rr: self.tx_vc_rr.clone(),
            wi_rr: self.wi_rr as u64,
            stats: self.stats,
        }
        .to_value()
    }

    fn restore_state_value(&mut self, v: &Value) -> Result<(), serde::Error> {
        let s = ParallelMacState::from_value(v)?;
        let n = self.cfg.radios;
        if s.tx_credit.len() != n || s.rx_credit.len() != n || s.tx_vc_rr.len() != n {
            return Err(serde::Error::msg(format!(
                "credit vectors sized {}/{}/{} for {n} radios",
                s.tx_credit.len(),
                s.rx_credit.len(),
                s.tx_vc_rr.len()
            )));
        }
        if s.wi_rr as usize >= n.max(1) {
            return Err(serde::Error::msg(format!(
                "round-robin pointer {} out of range for {n} radios",
                s.wi_rr
            )));
        }
        self.rng = SmallRng::from_state(s.rng);
        self.tx_credit = s.tx_credit;
        self.rx_credit = s.rx_credit;
        self.tx_vc_rr = s.tx_vc_rr;
        self.wi_rr = s.wi_rr as usize;
        self.stats = s.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_noc::radio::{MediumAction, RadioView, RxVcView, TxVcView};
    use wimnet_noc::{Flit, FlitKind};
    use wimnet_topology::NodeId;

    fn flit(packet: u64, kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            seq: 0,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    fn radio(id: usize, vcs: usize) -> RadioView {
        RadioView {
            id: RadioId(id),
            node: NodeId(id),
            tx: vec![
                TxVcView {
                    front: None,
                    len: 0,
                    front_run_len: 0,
                    front_run_has_tail: false,
                };
                vcs
            ],
            rx: vec![RxVcView { owner: None, len: 0, capacity: 16 }; vcs],
        }
    }

    fn loaded(id: usize, packet: u64, to: usize) -> RadioView {
        let mut r = radio(id, 2);
        r.tx[0] = TxVcView {
            front: Some((flit(packet, FlitKind::Head), RadioId(to))),
            len: 8,
            front_run_len: 8,
            front_run_has_tail: true,
        };
        r
    }

    fn count_transmits(actions: &MediumActions) -> usize {
        actions
            .actions()
            .iter()
            .filter(|a| matches!(a, MediumAction::Transmit { .. }))
            .count()
    }

    #[test]
    fn disjoint_pairs_transmit_concurrently() {
        let mut mac = ParallelMac::new(ChannelConfig::paper(4));
        // 0 -> 1 and 2 -> 3 simultaneously.
        let view = MediumView::new(vec![
            loaded(0, 1, 1),
            radio(1, 2),
            loaded(2, 2, 3),
            radio(3, 2),
        ]);
        let mut actions = MediumActions::new();
        mac.step(0, &view, &mut actions);
        assert_eq!(count_transmits(&actions), 2, "both pairs move in one cycle");
    }

    #[test]
    fn rate_one_moves_one_flit_per_wi_per_cycle() {
        let mut mac = ParallelMac::new(ChannelConfig::paper(2));
        let view = MediumView::new(vec![loaded(0, 1, 1), radio(1, 2)]);
        for now in 0..4u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 1);
        }
        assert_eq!(mac.stats().data_flits, 4);
    }

    #[test]
    fn fractional_rate_paces_transmissions() {
        // 0.2 flits/cycle: one flit every five cycles, like the
        // serialized channel's per-flit time.
        let mut mac = ParallelMac::with_rate(ChannelConfig::paper(2), 0.2);
        let view = MediumView::new(vec![loaded(0, 1, 1), radio(1, 2)]);
        let mut sent = 0;
        for now in 0..50u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            sent += count_transmits(&actions);
        }
        assert_eq!(sent, 10, "50 cycles x 0.2 = 10 flits");
    }

    #[test]
    fn receiver_capacity_backpressures() {
        let mut mac = ParallelMac::new(ChannelConfig::paper(2));
        let mut r1 = radio(1, 2);
        for vc in r1.rx.iter_mut() {
            vc.len = 16;
        }
        let view = MediumView::new(vec![loaded(0, 1, 1), r1]);
        for now in 0..10u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 0);
        }
    }

    #[test]
    fn two_senders_one_receiver_share_rx_bandwidth() {
        let mut mac = ParallelMac::new(ChannelConfig::paper(3));
        // 0 -> 2 and 1 -> 2: receiver takes one flit per cycle.
        let view = MediumView::new(vec![
            loaded(0, 1, 2),
            loaded(1, 2, 2),
            radio(2, 2),
        ]);
        let mut per_cycle = Vec::new();
        for now in 0..6u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            per_cycle.push(count_transmits(&actions));
        }
        assert!(per_cycle.iter().all(|&c| c <= 1), "rx budget caps at 1: {per_cycle:?}");
        assert_eq!(per_cycle.iter().sum::<usize>(), 6);
    }

    #[test]
    fn head_flits_charge_control_overhead() {
        let mut mac = ParallelMac::new(ChannelConfig::paper(2));
        let view = MediumView::new(vec![loaded(0, 1, 1), radio(1, 2)]);
        let mut actions = MediumActions::new();
        mac.step(0, &view, &mut actions);
        let control: f64 = actions
            .actions()
            .iter()
            .filter_map(|a| match a {
                MediumAction::Energy { category, energy }
                    if *category == EnergyCategory::WirelessControl =>
                {
                    Some(energy.picojoules())
                }
                _ => None,
            })
            .sum();
        assert!(control > 0.0);
        assert_eq!(mac.stats().turns, 1);
    }

    #[test]
    fn sleepy_mode_sleeps_inactive_wis() {
        let mut cfg = ChannelConfig::paper(4);
        cfg.sleepy_receivers = true;
        let mut mac = ParallelMac::new(cfg);
        let view = MediumView::new(vec![
            loaded(0, 1, 1),
            radio(1, 2),
            radio(2, 2),
            radio(3, 2),
        ]);
        let mut actions = MediumActions::new();
        mac.step(0, &view, &mut actions);
        let sleep: f64 = actions
            .actions()
            .iter()
            .filter_map(|a| match a {
                MediumAction::Energy { category, energy }
                    if *category == EnergyCategory::WirelessSleep =>
                {
                    Some(energy.picojoules())
                }
                _ => None,
            })
            .sum();
        assert!(sleep > 0.0, "radios 2 and 3 must sleep");
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        ParallelMac::with_rate(ChannelConfig::paper(2), 0.0);
    }
}
