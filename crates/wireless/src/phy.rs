//! Non-coherent OOK physical-layer relations.
//!
//! The paper chooses non-coherent on-off keying "as it allows relatively
//! simple and low-power circuit implementation" (§III.B).  For
//! non-coherent (envelope-detected) OOK, the classical bit error rate is
//!
//! ```text
//! BER ≈ ½ · exp(−SNR / 2)
//! ```
//!
//! with SNR as a linear power ratio.  These helpers validate the link
//! budget (a BER below 10⁻¹⁵ needs ≈ 20.3 dB of SNR) and convert BERs to
//! per-flit error probabilities for the MAC's retransmission path.

/// Bit error rate of non-coherent OOK at linear SNR `snr`.
///
/// # Panics
///
/// Panics if `snr` is negative or non-finite.
pub fn ook_ber(snr: f64) -> f64 {
    assert!(snr >= 0.0 && snr.is_finite(), "SNR must be a non-negative ratio");
    0.5 * (-snr / 2.0).exp()
}

/// The linear SNR required for a target OOK bit error rate.
///
/// # Panics
///
/// Panics unless `0 < ber <= 0.5`.
pub fn snr_for_ber(ber: f64) -> f64 {
    assert!(ber > 0.0 && ber <= 0.5, "BER must be in (0, 0.5]");
    -2.0 * (2.0 * ber).ln()
}

/// Converts a linear power ratio to decibels.
pub fn to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear power ratio.
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Probability that a `bits`-bit flit contains at least one bit error at
/// bit error rate `ber`.
///
/// Uses the numerically stable complement form, exact for independent
/// errors: `1 − (1 − ber)^bits`.
pub fn flit_error_probability(ber: f64, bits: u32) -> f64 {
    if ber <= 0.0 {
        return 0.0;
    }
    // 1 − (1 − ber)^bits, via expm1/ln1p for tiny BERs.
    -f64::exp_m1(f64::from(bits) * f64::ln_1p(-ber))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_falls_exponentially_with_snr() {
        assert!((ook_ber(0.0) - 0.5).abs() < 1e-12);
        assert!(ook_ber(10.0) < ook_ber(5.0));
        assert!(ook_ber(80.0) < 1e-15, "paper's link budget is reachable");
    }

    #[test]
    fn snr_for_ber_inverts_ook_ber() {
        for &ber in &[1e-3, 1e-9, 1e-15] {
            let snr = snr_for_ber(ber);
            assert!((ook_ber(snr) - ber).abs() / ber < 1e-9);
        }
    }

    #[test]
    fn paper_ber_needs_about_twenty_db() {
        // ½ exp(−snr/2) = 1e−15  ⇒  snr ≈ 67.6 (linear) ≈ 18.3 dB.
        let snr = snr_for_ber(1e-15);
        let db = to_db(snr);
        assert!((17.0..20.0).contains(&db), "got {db} dB");
    }

    #[test]
    fn db_round_trip() {
        for &x in &[0.1, 1.0, 42.0, 1e6] {
            assert!((from_db(to_db(x)) - x).abs() / x < 1e-12);
        }
    }

    #[test]
    fn flit_error_probability_behaviour() {
        assert_eq!(flit_error_probability(0.0, 32), 0.0);
        // Small BER: ≈ bits × ber.
        let p = flit_error_probability(1e-12, 32);
        assert!((p - 32e-12).abs() / 32e-12 < 1e-3);
        // Large BER saturates toward 1.
        let p = flit_error_probability(0.5, 512);
        assert!(p > 0.999_999);
        // Monotone in bits.
        assert!(
            flit_error_probability(1e-6, 64) > flit_error_probability(1e-6, 32)
        );
    }

    #[test]
    #[should_panic]
    fn negative_snr_panics() {
        ook_ber(-1.0);
    }

    #[test]
    #[should_panic]
    fn silly_ber_panics() {
        snr_for_ber(0.7);
    }
}
