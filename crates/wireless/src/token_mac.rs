//! The baseline token MAC (paper ref \[7\]).
//!
//! # Arbitration scheme (the paper's terminology)
//!
//! A token circulates over the WIs in sequence; only the token holder
//! may transmit, and — to preserve wormhole integrity without the
//! control-packet machinery — it may transmit only **whole packets**
//! that are fully buffered at the WI (§III.D: "in such a MAC only whole
//! packets are transmitted to other WIs").  That forces WI transmit
//! buffers at least as deep as a packet (64 flits), which is exactly the
//! buffer/static-power overhead the paper's proposed MAC removes.
//! Receivers are never power-gated: without a control packet announcing
//! destinations, every WI must listen.  Token-passing arbitration is the
//! standard baseline across in-package wireless NoC proposals; the
//! paper's §IV MAC comparison measures its channel-holding and
//! buffering penalties against the control-packet scheme.
//!
//! # Quiescence and idle fast-forward
//!
//! With every WI transmit buffer empty (the engine's fast-forward
//! precondition) the token machine is **view-independent**: a holder
//! with nothing buffered always passes, so the evolution is periodic —
//! one token pass (one broadcast control flit, one holder rotation)
//! every [`ChannelConfig::cycles_per_flit`] cycles, plus the constant
//! always-listening idle power each cycle.  [`TokenMac::idle_advance`]
//! realises that closed form for any cycle count `k`, bit-identically
//! to `k` calls of [`SharedMedium::step`] under an all-empty view
//! (proven by replay in `tests/idle_replay.rs`); the per-flit bit-error
//! RNG is untouched on idle cycles, so resuming after a jump is also
//! bit-identical.  The MAC declines quiescence only mid-transmission —
//! a state the engine's "no flits buffered anywhere" precondition makes
//! unreachable anyway.  See `docs/fast_forward.md` for the full
//! contract.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use wimnet_energy::EnergyCategory;
use wimnet_noc::radio::{MediumActions, MediumView, RadioId, SharedMedium};

use crate::config::ChannelConfig;
use crate::MacStats;

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum TokenState {
    /// Token travelling to the holder; usable from `until`.
    Passing { until: u64 },
    /// Holder inspects its buffers and decides.
    Deciding,
    /// Whole-packet transmission in progress.
    Transmitting {
        tx_vc: usize,
        to: RadioId,
        remaining: u32,
        next_ready: u64,
    },
}

/// Checkpointed dynamic state of a [`TokenMac`] (the configuration is
/// rebuilt by the constructor and deliberately excluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TokenMacState {
    rng: [u64; 4],
    holder: u64,
    state: TokenState,
    stats: MacStats,
}

/// The token-passing MAC baseline.
#[derive(Debug, Clone)]
pub struct TokenMac {
    cfg: ChannelConfig,
    rng: SmallRng,
    holder: usize,
    state: TokenState,
    stats: MacStats,
    /// Turn-interval recording for trace export (`Some` once
    /// [`SharedMedium::set_trace_enabled`] asked for it).  Purely
    /// additive side state: nothing below ever reads it, so recording
    /// cannot change a MAC decision or an RNG draw.  Excluded from
    /// [`TokenMacState`] snapshots (observational, not engine state).
    turn_log: Option<Vec<wimnet_telemetry::TurnRecord>>,
    turn_start: u64,
    turn_flits: u64,
}

impl TokenMac {
    /// Creates the token MAC for `cfg.radios` wireless interfaces.
    ///
    /// Remember to size the engine's `radio_tx_depth` to at least the
    /// packet length, or no packet will ever become eligible.
    pub fn new(cfg: ChannelConfig) -> Self {
        TokenMac {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x70ce_0000),
            cfg,
            holder: 0,
            state: TokenState::Deciding,
            stats: MacStats::default(),
            turn_log: None,
            turn_start: 0,
            turn_flits: 0,
        }
    }

    /// MAC statistics.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    fn pass_token(&mut self, now: u64, actions: &mut MediumActions) {
        // Token = one broadcast flit.
        let n = self.cfg.radios;
        actions.energy(EnergyCategory::WirelessControl, self.pass_energy());
        self.stats.control_flits += 1;
        self.holder = (self.holder + 1) % n;
        self.state = TokenState::Passing {
            until: now + self.cfg.cycles_per_flit(),
        };
    }

    /// Energy of one token broadcast: one TX plus `radios − 1` decodes.
    fn pass_energy(&self) -> wimnet_energy::Energy {
        let bits = u64::from(self.cfg.flit_bits);
        self.cfg.energy.wireless_tx(bits)
            + self.cfg.energy.wireless_rx(bits) * (self.cfg.radios - 1) as f64
    }

    /// Advances the idle token machine by `cycles` cycles starting at
    /// `now`, emitting exactly the per-cycle actions that many
    /// [`SharedMedium::step`] calls under an all-empty view would.
    ///
    /// The idle evolution is closed-form: pass cycles sit at
    /// `first + i · cpf` where `first` is `now` (token at a deciding
    /// holder) or the pending arrival cycle, and `cpf` is the token's
    /// one-flit serialisation time.  Both the state update (holder
    /// rotation modulo `radios`, next arrival cycle, stats) and the
    /// energy charges are O(1) in `cycles`: the pass count follows from
    /// arithmetic, and the charges land as two repeated-charge actions —
    /// the meter's exact accumulator makes the per-category sum
    /// independent of charge order and batching, so this is
    /// bit-identical to per-cycle replay (see `docs/fast_forward.md`).
    ///
    /// # Panics
    ///
    /// Debug-asserts [`SharedMedium::is_quiescent`]: calling this
    /// mid-transmission would skip data flits.
    pub fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        let n = self.cfg.radios;
        if n == 0 || cycles == 0 {
            return;
        }
        debug_assert!(self.is_quiescent(), "idle_advance during a transmission");
        // `.max(1)`: a degenerate zero-cycle flit time means `step`
        // passes the token every cycle.
        let cpf = self.cfg.cycles_per_flit().max(1);
        let first = match self.state {
            TokenState::Deciding => now,
            TokenState::Passing { until } => until.max(now),
            TokenState::Transmitting { .. } => unreachable!("quiescence asserted"),
        };
        let end = now + cycles;
        // Pass cycles are `first, first + cpf, …` clipped to `[now, end)`
        // (`first ≥ now` by construction).
        let passes = if end > first { (end - 1 - first) / cpf + 1 } else { 0 };
        actions.energy_repeated(EnergyCategory::WirelessControl, self.pass_energy(), passes);
        actions.energy_repeated(
            EnergyCategory::WirelessIdle,
            self.cfg.energy.wireless_idle_over(1) * n as f64,
            cycles,
        );
        if passes > 0 {
            self.stats.turns += passes;
            self.stats.passes += passes;
            self.stats.control_flits += passes;
            self.holder = ((self.holder as u64 + passes) % n as u64) as usize;
            let last = first + (passes - 1) * cpf;
            self.state = TokenState::Passing { until: last + self.cfg.cycles_per_flit() };
        }
    }
}

impl SharedMedium for TokenMac {
    fn step(&mut self, now: u64, view: &MediumView, actions: &mut MediumActions) {
        let n = self.cfg.radios;
        if n == 0 {
            return;
        }
        debug_assert_eq!(view.len(), n, "radio count mismatch");

        if let TokenState::Passing { until } = self.state {
            if now >= until {
                self.state = TokenState::Deciding;
            }
        }

        if self.state == TokenState::Deciding {
            self.stats.turns += 1;
            // First TX VC holding a complete packet whose receiver can
            // take a head flit right now.
            let choice = view
                .radio(RadioId(self.holder))
                .tx
                .iter()
                .enumerate()
                .find_map(|(tx_vc, tv)| {
                    if !tv.whole_packet_at_front() {
                        return None;
                    }
                    let (front, target) = tv.front.expect("whole packet has a front");
                    view.rx_admission(target, front.packet, true)
                        .map(|_| (tx_vc, target, tv.front_run_len as u32))
                });
            match choice {
                Some((tx_vc, to, len)) => {
                    if self.turn_log.is_some() {
                        self.turn_start = now;
                        self.turn_flits = 0;
                    }
                    self.state = TokenState::Transmitting {
                        tx_vc,
                        to,
                        remaining: len,
                        next_ready: now + self.cfg.cycles_per_flit(),
                    };
                }
                None => {
                    self.stats.passes += 1;
                    self.pass_token(now, actions);
                }
            }
        }

        if let TokenState::Transmitting { tx_vc, to, remaining, next_ready } = self.state
        {
            if now >= next_ready {
                let front = view.radio(RadioId(self.holder)).tx[tx_vc].front;
                // The packet was fully buffered when chosen; its flits
                // only leave through us, so the front must exist.
                let (flit, _) = front.expect("scheduled packet still buffered");
                match view.rx_admission(to, flit.packet, flit.kind.is_head()) {
                    None => {
                        // Receiver back-pressured mid-packet: hold the
                        // channel and retry (the token MAC cannot yield
                        // mid-packet without breaking wormhole flow).
                    }
                    Some(rx_vc) => {
                        let bits = u64::from(self.cfg.flit_bits);
                        if self.rng.gen::<f64>() < self.cfg.flit_error_probability() {
                            actions.energy(
                                EnergyCategory::WirelessTx,
                                self.cfg.energy.wireless_tx(bits),
                            );
                            self.stats.retransmissions += 1;
                            self.state = TokenState::Transmitting {
                                tx_vc,
                                to,
                                remaining,
                                next_ready: now + self.cfg.cycles_per_flit(),
                            };
                        } else {
                            actions.energy(
                                EnergyCategory::WirelessTx,
                                self.cfg.energy.wireless_tx(bits),
                            );
                            actions.energy(
                                EnergyCategory::WirelessRx,
                                self.cfg.energy.wireless_rx(bits),
                            );
                            actions.transmit(RadioId(self.holder), tx_vc, rx_vc);
                            self.stats.data_flits += 1;
                            self.turn_flits += 1;
                            if remaining == 1 {
                                if let Some(log) = &mut self.turn_log {
                                    log.push(wimnet_telemetry::TurnRecord {
                                        radio: self.holder as u64,
                                        start: self.turn_start,
                                        end: now + 1,
                                        flits: self.turn_flits,
                                    });
                                }
                                self.pass_token(now, actions);
                            } else {
                                self.state = TokenState::Transmitting {
                                    tx_vc,
                                    to,
                                    remaining: remaining - 1,
                                    next_ready: now + self.cfg.cycles_per_flit(),
                                };
                            }
                        }
                    }
                }
            }
        }

        // No sleep in the baseline: every receiver listens all the time.
        actions.energy(
            EnergyCategory::WirelessIdle,
            self.cfg.energy.wireless_idle_over(1) * n as f64,
        );
    }

    fn name(&self) -> &str {
        "token-mac"
    }

    fn is_quiescent(&self) -> bool {
        // Passing and Deciding evolve view-independently when every TX
        // buffer is empty (the engine's precondition): a deciding holder
        // with nothing buffered always passes, so the machine is
        // periodic in the token's flit time and `idle_advance` replays
        // it exactly.  Only a transmission in flight pins the MAC to
        // full stepping — and the precondition makes that unreachable,
        // since a scheduled packet is still buffered at the WI.
        !matches!(self.state, TokenState::Transmitting { .. })
    }

    fn idle_step(&mut self, now: u64, actions: &mut MediumActions) {
        TokenMac::idle_advance(self, now, 1, actions);
    }

    fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        TokenMac::idle_advance(self, now, cycles, actions);
    }

    fn mac_counters(&self) -> wimnet_telemetry::MacCounters {
        wimnet_telemetry::MacCounters {
            turns: self.stats.turns,
            passes: self.stats.passes,
            control_flits: self.stats.control_flits,
            data_flits: self.stats.data_flits,
            collisions: self.stats.retransmissions,
        }
    }

    fn set_trace_enabled(&mut self, on: bool) {
        self.turn_log = on.then(Vec::new);
    }

    fn drain_turn_records(&mut self, out: &mut Vec<wimnet_telemetry::TurnRecord>) {
        if let Some(log) = &mut self.turn_log {
            out.append(log);
        }
    }

    fn state_value(&self) -> Value {
        TokenMacState {
            rng: self.rng.state(),
            holder: self.holder as u64,
            state: self.state,
            stats: self.stats,
        }
        .to_value()
    }

    fn restore_state_value(&mut self, v: &Value) -> Result<(), serde::Error> {
        let s = TokenMacState::from_value(v)?;
        if s.holder as usize >= self.cfg.radios.max(1) {
            return Err(serde::Error::msg(format!(
                "token holder {} out of range for {} radios",
                s.holder, self.cfg.radios
            )));
        }
        self.rng = SmallRng::from_state(s.rng);
        self.holder = s.holder as usize;
        self.state = s.state;
        self.stats = s.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_noc::radio::{MediumAction, RadioView, RxVcView, TxVcView};
    use wimnet_noc::{Flit, FlitKind, PacketId};
    use wimnet_topology::NodeId;

    fn flit(packet: u64, kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            seq: 0,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    fn empty_radio(id: usize, vcs: usize) -> RadioView {
        RadioView {
            id: RadioId(id),
            node: NodeId(id),
            tx: vec![
                TxVcView {
                    front: None,
                    len: 0,
                    front_run_len: 0,
                    front_run_has_tail: false,
                };
                vcs
            ],
            rx: vec![RxVcView { owner: None, len: 0, capacity: 16 }; vcs],
        }
    }

    fn count_transmits(actions: &MediumActions) -> usize {
        actions
            .actions()
            .iter()
            .filter(|a| matches!(a, MediumAction::Transmit { .. }))
            .count()
    }

    #[test]
    fn whole_packet_transmits_then_token_passes() {
        let mut mac = TokenMac::new(ChannelConfig::paper(2));
        let mut r0 = empty_radio(0, 2);
        r0.tx[0] = TxVcView {
            front: Some((flit(3, FlitKind::Head), RadioId(1))),
            len: 4,
            front_run_len: 4,
            front_run_has_tail: true,
        };
        let view = MediumView::new(vec![r0, empty_radio(1, 2)]);
        let mut sent = 0;
        for now in 0..60u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            sent += count_transmits(&actions);
            if sent == 4 {
                break;
            }
        }
        assert_eq!(sent, 4);
        assert_eq!(mac.stats().data_flits, 4);
    }

    #[test]
    fn partial_packets_are_not_eligible() {
        let mut mac = TokenMac::new(ChannelConfig::paper(2));
        let mut r0 = empty_radio(0, 2);
        // Head present but tail still missing: not a whole packet.
        r0.tx[0] = TxVcView {
            front: Some((flit(3, FlitKind::Head), RadioId(1))),
            len: 4,
            front_run_len: 4,
            front_run_has_tail: false,
        };
        let view = MediumView::new(vec![r0, empty_radio(1, 2)]);
        for now in 0..50u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 0);
        }
        assert!(mac.stats().passes > 0, "token keeps circulating");
    }

    #[test]
    fn token_passes_cost_control_flits_and_idle_energy() {
        let mut mac = TokenMac::new(ChannelConfig::paper(3));
        let view = MediumView::new(vec![
            empty_radio(0, 1),
            empty_radio(1, 1),
            empty_radio(2, 1),
        ]);
        let mut idle_pj = 0.0;
        for now in 0..30u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            for a in actions.actions() {
                if let MediumAction::Energy { category, energy } = a {
                    if *category == EnergyCategory::WirelessIdle {
                        idle_pj += energy.picojoules();
                    }
                }
            }
        }
        assert!(mac.stats().control_flits >= 5);
        assert!(idle_pj > 0.0, "all receivers always listen");
    }

    #[test]
    fn full_receiver_stalls_but_does_not_overflow() {
        let mut mac = TokenMac::new(ChannelConfig::paper(2));
        let mut r0 = empty_radio(0, 1);
        r0.tx[0] = TxVcView {
            front: Some((flit(3, FlitKind::Head), RadioId(1))),
            len: 4,
            front_run_len: 4,
            front_run_has_tail: true,
        };
        let mut r1 = empty_radio(1, 1);
        r1.rx[0].len = 16; // full
        let view = MediumView::new(vec![r0, r1]);
        for now in 0..50u64 {
            let mut actions = MediumActions::new();
            mac.step(now, &view, &mut actions);
            assert_eq!(count_transmits(&actions), 0);
        }
    }
}
