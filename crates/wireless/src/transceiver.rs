//! The OOK transceiver (paper ref \[6\], TSMC 65 nm).
//!
//! §IV: "The wireless transceiver … is shown to dissipate 2.3 pJ/bit
//! sustaining a data rate of 16 Gbps with a signal to noise ratio (SNR)
//! providing a bit-error rate (BER) of less than 10⁻¹⁵ while occupying an
//! area of 0.3 mm²."  With the sleepy design of ref \[17\], receivers whose
//! control packet does not address them are power-gated through the data
//! phase.

use serde::{Deserialize, Serialize};

use wimnet_energy::{Energy, EnergyModel, Power};

/// Wake state of a wireless transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransceiverState {
    /// Front end on, decoding or listening.
    Awake,
    /// Power-gated (sleepy transceiver, paper ref \[17\]).
    Asleep,
}

/// Datasheet-style description of the paper's wireless transceiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransceiverSpec {
    /// Sustained data rate in Gbps.
    pub data_rate_gbps: f64,
    /// Total link energy per bit in pJ (TX + RX).
    pub energy_pj_per_bit: f64,
    /// Active silicon area in mm².
    pub area_mm2: f64,
    /// Worst-case link bit error rate.
    pub ber: f64,
}

impl TransceiverSpec {
    /// The paper's transceiver: 16 Gbps, 2.3 pJ/bit, 0.3 mm², BER < 1e-15.
    pub fn paper() -> Self {
        TransceiverSpec {
            data_rate_gbps: 16.0,
            energy_pj_per_bit: 2.3,
            area_mm2: 0.3,
            ber: 1e-15,
        }
    }

    /// Energy to move `bits` across the link (TX + RX), per the spec.
    pub fn link_energy(&self, bits: u64) -> Energy {
        Energy::from_pj(self.energy_pj_per_bit * bits as f64)
    }

    /// Transmission time for `bits`, in seconds.
    pub fn serialization_seconds(&self, bits: u64) -> f64 {
        bits as f64 / (self.data_rate_gbps * 1e9)
    }

    /// Total active area for `count` deployed transceivers, in mm² —
    /// the paper's "negligible overhead of 0.3 mm² per transceiver".
    pub fn total_area_mm2(&self, count: usize) -> f64 {
        self.area_mm2 * count as f64
    }

    /// `true` when an [`EnergyModel`]'s wireless constants agree with
    /// this spec (guards against config drift between the crates).
    pub fn matches_energy_model(&self, model: &EnergyModel) -> bool {
        let total = model.wireless_tx_pj_per_bit + model.wireless_rx_pj_per_bit;
        (total - self.energy_pj_per_bit).abs() < 1e-9
    }

    /// The power drawn in `state`, from the energy model's idle/sleep
    /// constants.
    pub fn state_power(&self, state: TransceiverState, model: &EnergyModel) -> Power {
        match state {
            TransceiverState::Awake => model.wireless_idle,
            TransceiverState::Asleep => model.wireless_sleep,
        }
    }
}

impl Default for TransceiverSpec {
    fn default() -> Self {
        TransceiverSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let t = TransceiverSpec::paper();
        assert_eq!(t.data_rate_gbps, 16.0);
        assert_eq!(t.energy_pj_per_bit, 2.3);
        assert_eq!(t.area_mm2, 0.3);
        assert!(t.ber <= 1e-15);
    }

    #[test]
    fn link_energy_scales_with_bits() {
        let t = TransceiverSpec::paper();
        assert!((t.link_energy(1).picojoules() - 2.3).abs() < 1e-12);
        // A full 64-flit, 32-bit packet: 2048 bits × 2.3 pJ ≈ 4.7 nJ.
        assert!((t.link_energy(2048).nanojoules() - 4.7104).abs() < 1e-9);
    }

    #[test]
    fn serialization_time_matches_rate() {
        let t = TransceiverSpec::paper();
        // One 32-bit flit at 16 Gbps = 2 ns.
        assert!((t.serialization_seconds(32) - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn area_overhead_for_paper_systems() {
        let t = TransceiverSpec::paper();
        // 4C4M: 8 WIs = 2.4 mm² — negligible against 400 mm² of compute.
        assert!((t.total_area_mm2(8) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn spec_agrees_with_energy_model() {
        let t = TransceiverSpec::paper();
        assert!(t.matches_energy_model(&EnergyModel::paper_65nm()));
        let mut m = EnergyModel::paper_65nm();
        m.wireless_tx_pj_per_bit = 9.0;
        assert!(!t.matches_energy_model(&m));
    }

    #[test]
    fn sleep_draws_less_than_awake() {
        let t = TransceiverSpec::paper();
        let m = EnergyModel::paper_65nm();
        assert!(
            t.state_power(TransceiverState::Asleep, &m)
                < t.state_power(TransceiverState::Awake, &m)
        );
    }
}
