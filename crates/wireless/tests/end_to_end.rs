//! End-to-end: the control-packet MAC carries real traffic across chips
//! through the cycle-accurate engine.

use wimnet_energy::EnergyCategory;
use wimnet_noc::{Network, NocConfig, PacketDesc};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet_wireless::{ChannelConfig, ControlPacketMac, TokenMac};

fn wireless_net(radio_tx_depth: usize) -> (MultichipLayout, Network) {
    let layout =
        MultichipLayout::build(&MultichipConfig::xcym(4, 4, Architecture::Wireless))
            .unwrap();
    let routes = Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
    let mut cfg = NocConfig::paper();
    cfg.radio_tx_depth = radio_tx_depth;
    let net = Network::new(&layout, routes, cfg).unwrap();
    (layout, net)
}

#[test]
fn control_mac_delivers_interchip_packet() {
    let (layout, mut net) = wireless_net(16);
    let mac = ControlPacketMac::new(ChannelConfig::paper(net.radio_count()));
    net.attach_medium(Box::new(mac));

    // Core on chip 0 to core on chip 3: wireless is the only way across.
    let src = layout.core_nodes()[0];
    let dst = layout.core_nodes()[63];
    net.inject(PacketDesc::new(src, dst, 64, 0));
    for _ in 0..5000 {
        net.step();
    }
    assert_eq!(net.stats().packets_delivered(), 1);
    assert_eq!(net.stats().flits_delivered(), 64);
    assert_eq!(net.flits_in_flight(), 0);
    let meter = net.meter();
    assert!(meter.category(EnergyCategory::WirelessTx).joules() > 0.0);
    assert!(meter.category(EnergyCategory::WirelessRx).joules() > 0.0);
    assert!(meter.category(EnergyCategory::WirelessControl).joules() > 0.0);
    assert!(meter.verify_conservation(1e-9));
}

#[test]
fn control_mac_delivers_memory_traffic() {
    let (layout, mut net) = wireless_net(16);
    let mac = ControlPacketMac::new(ChannelConfig::paper(net.radio_count()));
    net.attach_medium(Box::new(mac));

    // Every chip sends one packet to every memory stack.
    let mut expected = 0;
    for chip in 0..4 {
        for stack in 0..4 {
            let src = layout.core_nodes()[chip * 16 + 5];
            let dst = layout.memory_nodes()[stack];
            net.inject(PacketDesc::new(src, dst, 64, 0));
            expected += 1;
        }
    }
    for _ in 0..60_000 {
        net.step();
        if net.stats().packets_delivered() == expected {
            break;
        }
    }
    assert_eq!(net.stats().packets_delivered(), expected);
    assert!(!net.is_stalled(10_000));
}

#[test]
fn many_concurrent_flows_complete_without_stall() {
    let (layout, mut net) = wireless_net(16);
    let mac = ControlPacketMac::new(ChannelConfig::paper(net.radio_count()));
    net.attach_medium(Box::new(mac));

    // All-to-all-ish: each core sends to a core on another chip.
    let cores = layout.core_nodes().to_vec();
    let mut expected = 0u64;
    for (i, &src) in cores.iter().enumerate() {
        let dst = cores[(i + 16) % 64]; // next chip over
        net.inject(PacketDesc::new(src, dst, 64, 0));
        expected += 1;
    }
    for _ in 0..200_000 {
        net.step();
        if net.stats().packets_delivered() == expected {
            break;
        }
    }
    assert_eq!(
        net.stats().packets_delivered(),
        expected,
        "in flight {} backlog {} after {} cycles",
        net.flits_in_flight(),
        net.source_backlog(),
        net.now(),
    );
}

#[test]
fn token_mac_delivers_whole_packets_with_deep_buffers() {
    // The token MAC needs the whole packet buffered at the WI.
    let (layout, mut net) = wireless_net(64);
    let mac = TokenMac::new(ChannelConfig::paper(net.radio_count()));
    net.attach_medium(Box::new(mac));

    let src = layout.core_nodes()[0];
    let dst = layout.core_nodes()[63];
    net.inject(PacketDesc::new(src, dst, 64, 0));
    for _ in 0..10_000 {
        net.step();
        if net.stats().packets_delivered() == 1 {
            break;
        }
    }
    assert_eq!(net.stats().packets_delivered(), 1);
}

#[test]
fn token_mac_with_shallow_buffers_starves() {
    // With 16-flit TX buffers a 64-flit packet is never whole: the
    // baseline cannot send it (this is the paper's §III.D argument for
    // partial packet transmission).
    let (layout, mut net) = wireless_net(16);
    let mac = TokenMac::new(ChannelConfig::paper(net.radio_count()));
    net.attach_medium(Box::new(mac));

    let src = layout.core_nodes()[0];
    let dst = layout.core_nodes()[63];
    net.inject(PacketDesc::new(src, dst, 64, 0));
    for _ in 0..10_000 {
        net.step();
    }
    assert_eq!(net.stats().packets_delivered(), 0);
    assert!(net.is_stalled(5_000));
}

#[test]
fn noisy_channel_still_delivers_everything() {
    // Failure injection: 1% BER corrupts roughly a quarter of the flits,
    // yet the stop-and-wait retransmission keeps wormhole order and
    // every packet completes.
    let (layout, mut net) = wireless_net(16);
    let mut cfg = ChannelConfig::paper(net.radio_count());
    cfg.ber = 0.01;
    cfg.seed = 77;
    net.attach_medium(Box::new(ControlPacketMac::new(cfg)));
    let mut expected = 0;
    for chip in 0..4 {
        let src = layout.core_nodes()[chip * 16 + 2];
        let dst = layout.core_nodes()[(chip * 16 + 34) % 64];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        expected += 1;
    }
    for _ in 0..60_000 {
        net.step();
        if net.stats().packets_delivered() == expected {
            break;
        }
    }
    assert_eq!(net.stats().packets_delivered(), expected);
    assert_eq!(net.stats().flits_delivered(), 64 * expected);
    assert_eq!(net.flits_in_flight(), 0);
}

#[test]
fn parallel_links_beat_the_serialized_channel_under_load() {
    let run = |parallel: bool| {
        let (layout, mut net) = wireless_net(16);
        let cfg = ChannelConfig::paper(net.radio_count());
        if parallel {
            net.attach_medium(Box::new(wimnet_wireless::ParallelMac::new(cfg)));
        } else {
            net.attach_medium(Box::new(ControlPacketMac::new(cfg)));
        }
        // Disjoint cross-chip pairs: the parallel medium can serve them
        // concurrently, the serialized MAC cannot.
        for k in 0..16usize {
            let src = layout.core_nodes()[k];
            let dst = layout.core_nodes()[32 + k];
            net.inject(PacketDesc::new(src, dst, 64, 0));
        }
        let mut cycles = 0u64;
        for _ in 0..400_000u64 {
            net.step();
            cycles += 1;
            if net.stats().packets_delivered() == 16 {
                break;
            }
        }
        assert_eq!(net.stats().packets_delivered(), 16, "parallel={parallel}");
        cycles
    };
    let parallel = run(true);
    let serialized = run(false);
    assert!(
        parallel * 2 < serialized,
        "concurrency must at least halve completion time: \
         parallel {parallel} vs serialized {serialized}"
    );
}

#[test]
fn sleepy_mode_reduces_total_wireless_energy() {
    let run = |sleepy: bool| {
        let (layout, mut net) = wireless_net(16);
        let mut cfg = ChannelConfig::paper(net.radio_count());
        cfg.sleepy_receivers = sleepy;
        net.attach_medium(Box::new(ControlPacketMac::new(cfg)));
        for chip in 0..4 {
            let src = layout.core_nodes()[chip * 16];
            let dst = layout.core_nodes()[(chip * 16 + 32) % 64];
            net.inject(PacketDesc::new(src, dst, 64, 0));
        }
        for _ in 0..20_000 {
            net.step();
            if net.stats().packets_delivered() == 4 {
                break;
            }
        }
        assert_eq!(net.stats().packets_delivered(), 4);
        net.meter().wireless_total()
    };
    let sleepy = run(true);
    let awake = run(false);
    assert!(
        sleepy < awake,
        "sleepy {sleepy:?} must beat always-on {awake:?}"
    );
}
