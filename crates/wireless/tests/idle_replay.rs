//! The idle fast-forward replay obligation, property-based: for both
//! serialized-channel MACs, `idle_advance(k)` (and `k` × `idle_step`)
//! starting from a random TX-drain state must charge **bit-identical**
//! per-category energy to `k` full [`SharedMedium::step`] calls under
//! an all-empty view and leave bit-identical MAC state — and resuming
//! with live traffic afterwards must behave identically too.  The
//! closed forms emit repeated-charge batches rather than per-cycle
//! actions, so the streams are compared by their effect on an exact
//! [`EnergyMeter`] (order- and batching-independent by construction),
//! not action by action; the jump's action count is additionally
//! asserted O(1) in `k`.  This is the contract that lets the engine
//! skip idle cycles on the MAC-comparison scenarios (see
//! `docs/fast_forward.md`).

use proptest::prelude::*;

use wimnet_energy::EnergyMeter;
use wimnet_noc::radio::{MediumAction, MediumActions, MediumView, RadioId, SharedMedium};
use wimnet_noc::{Flit, FlitKind, PacketId};
use wimnet_topology::NodeId;
use wimnet_wireless::{ChannelConfig, ControlPacketMac, TokenMac};

/// A draining transmit world: radio 0 holds one `total`-flit packet for
/// radio 1; MAC `Transmit` actions pop it flit by flit.  Rebuilding the
/// view each cycle mirrors what the engine's radio FIFOs would show.
#[derive(Debug, Clone)]
struct World {
    radios: usize,
    vcs: usize,
    packet: u64,
    total: u32,
    remaining: u32,
    /// Radio 1's receive VCs: `(owner, buffered)` per VC — the state
    /// the hosting switch's radio input port would expose.
    rx: Vec<(Option<PacketId>, usize)>,
}

impl World {
    fn new(radios: usize, vcs: usize, packet: u64, total: u32) -> Self {
        World { radios, vcs, packet, total, remaining: total, rx: vec![(None, 0); vcs] }
    }

    fn front_kind(&self) -> FlitKind {
        if self.remaining == self.total {
            if self.total == 1 { FlitKind::HeadTail } else { FlitKind::Head }
        } else if self.remaining == 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }

    fn view(&self) -> MediumView {
        let mut radios: Vec<_> = (0..self.radios)
            .map(|i| empty_radio(i, self.vcs))
            .collect();
        if self.remaining > 0 {
            radios[0].tx[0] = wimnet_noc::radio::TxVcView {
                front: Some((
                    Flit {
                        packet: PacketId(self.packet),
                        kind: self.front_kind(),
                        seq: self.total - self.remaining,
                        src: NodeId(0),
                        dest: NodeId(1),
                        created_at: 0,
                    },
                    RadioId(1),
                )),
                len: self.remaining as usize,
                front_run_len: self.remaining as usize,
                front_run_has_tail: true,
            };
        }
        for (vc, &(owner, len)) in self.rx.iter().enumerate() {
            radios[1].rx[vc].owner = owner;
            radios[1].rx[vc].len = len;
        }
        MediumView::new(radios)
    }

    fn apply(&mut self, actions: &MediumActions) {
        for a in actions.actions() {
            if let MediumAction::Transmit { from, tx_vc, rx_vc } = a {
                assert_eq!((*from, *tx_vc), (RadioId(0), 0), "unexpected transmit source");
                assert!(self.remaining > 0, "MAC transmitted from an empty TX FIFO");
                let is_tail = matches!(self.front_kind(), FlitKind::Tail | FlitKind::HeadTail);
                self.remaining -= 1;
                let slot = &mut self.rx[*rx_vc];
                slot.0 = if is_tail { None } else { Some(PacketId(self.packet)) };
                slot.1 += 1;
            }
        }
    }

    fn drained(&self) -> bool {
        self.remaining == 0
    }
}

fn empty_radio(id: usize, vcs: usize) -> wimnet_noc::radio::RadioView {
    wimnet_noc::radio::RadioView {
        id: RadioId(id),
        node: NodeId(id),
        tx: vec![
            wimnet_noc::radio::TxVcView {
                front: None,
                len: 0,
                front_run_len: 0,
                front_run_has_tail: false,
            };
            vcs
        ],
        rx: vec![
            wimnet_noc::radio::RxVcView { owner: None, len: 0, capacity: 16 };
            vcs
        ],
    }
}

/// Drives `mac` through the draining world until the TX FIFO is empty
/// *and* the MAC reports quiescence; returns the cycle to resume from.
fn drain_to_quiescence(mac: &mut dyn SharedMedium, world: &mut World, start: u64) -> u64 {
    let mut now = start;
    // Generous bound: worst case is the token MAC circling many empty
    // holders between packets plus per-flit serialisation.
    let deadline = start + 20_000;
    loop {
        if world.drained() && mac.is_quiescent() {
            return now;
        }
        assert!(now < deadline, "drain did not reach quiescence");
        let view = world.view();
        let mut actions = MediumActions::new();
        mac.step(now, &view, &mut actions);
        world.apply(&actions);
        now += 1;
    }
}

/// The replay check proper, shared by both MACs: from the current
/// (quiescent, TX-drained) state, `k` full steps under an empty view,
/// `k` `idle_step`s, and one `idle_advance(k)` must all charge
/// bit-identical per-category energy (meter-effect equality — the
/// batched closed forms legitimately emit fewer, coarser actions) and
/// leave bit-identical MAC state — and a subsequent live-traffic
/// resume must not diverge either.
#[allow(clippy::too_many_arguments)]
fn assert_idle_replay<M, S, A>(
    mac: M,
    radios: usize,
    vcs: usize,
    now: u64,
    k: u64,
    step: S,
    idle_advance: A,
) where
    M: SharedMedium + Clone + std::fmt::Debug,
    S: Fn(&mut M, u64, &MediumView, &mut MediumActions),
    A: Fn(&mut M, u64, u64, &mut MediumActions),
{
    let empty = World::new(radios, vcs, 999, 0).view();

    // Reference walk: k full steps under the all-empty view.
    let mut full = mac.clone();
    let mut full_actions = MediumActions::new();
    for c in now..now + k {
        let mut cycle = MediumActions::new();
        step(&mut full, c, &empty, &mut cycle);
        for a in cycle.actions() {
            assert!(
                !matches!(a, MediumAction::Transmit { .. }),
                "an idle step must not move flits"
            );
        }
        full_actions.list_extend(cycle);
    }

    // k × idle_step.
    let mut stepped = mac.clone();
    let mut stepped_actions = MediumActions::new();
    for c in now..now + k {
        let mut cycle = MediumActions::new();
        stepped.idle_step(c, &mut cycle);
        stepped_actions.list_extend(cycle);
    }

    // One closed-form jump.
    let mut jumped = mac.clone();
    let mut jumped_actions = MediumActions::new();
    idle_advance(&mut jumped, now, k, &mut jumped_actions);

    // Meter-effect equality: the exact accumulator makes per-category
    // sums independent of charge order and batching, so this is the
    // semantics the engine actually observes.
    let full_meter = meter_of(&full_actions);
    assert_eq!(full_meter, meter_of(&stepped_actions), "idle_step diverged from step");
    assert_eq!(full_meter, meter_of(&jumped_actions), "idle_advance diverged from step");
    // The jump itself must be O(1) in k: a handful of repeated charges,
    // never a per-cycle replay.
    assert!(
        jumped_actions.actions().len() <= 8,
        "idle_advance emitted {} actions for k = {k} — not O(1)",
        jumped_actions.actions().len(),
    );
    assert_eq!(
        format!("{full:?}"),
        format!("{stepped:?}"),
        "idle_step left different state"
    );
    assert_eq!(
        format!("{full:?}"),
        format!("{jumped:?}"),
        "idle_advance left different state"
    );

    // Resume with live traffic: the three replicas must keep agreeing.
    let resume = now + k;
    let mut w_full = World::new(radios, vcs, 1000, 4);
    let mut w_jump = w_full.clone();
    let mut c = resume;
    while !(w_full.drained() && full.is_quiescent()) {
        assert!(c < resume + 20_000, "resume drain stalled");
        let mut a_full = MediumActions::new();
        step(&mut full, c, &w_full.view(), &mut a_full);
        let mut a_jump = MediumActions::new();
        step(&mut jumped, c, &w_jump.view(), &mut a_jump);
        assert_eq!(a_full, a_jump, "resume diverged at cycle {c}");
        w_full.apply(&a_full);
        w_jump.apply(&a_jump);
        c += 1;
    }
    assert_eq!(format!("{full:?}"), format!("{jumped:?}"), "post-resume state diverged");
}

/// Test-local extension: append another action list (the engine applies
/// actions strictly in emission order, so concatenation is the faithful
/// composition).
trait ActionListExt {
    fn list_extend(&mut self, other: MediumActions);
}

impl ActionListExt for MediumActions {
    fn list_extend(&mut self, other: MediumActions) {
        for a in other.actions() {
            match *a {
                MediumAction::Energy { category, energy } => self.energy(category, energy),
                MediumAction::EnergyRepeated { category, energy, count } => {
                    self.energy_repeated(category, energy, count)
                }
                MediumAction::Transmit { from, tx_vc, rx_vc } => {
                    self.transmit(from, tx_vc, rx_vc)
                }
            }
        }
    }
}

/// Applies an action stream's energy charges to a fresh exact meter —
/// the engine-observable effect of an idle replay.
fn meter_of(actions: &MediumActions) -> EnergyMeter {
    let mut m = EnergyMeter::new();
    for a in actions.actions() {
        match *a {
            MediumAction::Energy { category, energy } => m.add(category, energy),
            MediumAction::EnergyRepeated { category, energy, count } => {
                m.add_repeated(category, energy, count)
            }
            MediumAction::Transmit { .. } => panic!("idle replay must not move flits"),
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Token MAC: random drain states (packet length, warm-up offset,
    /// radio count, sleepy flag) all replay bit-identically.
    #[test]
    fn token_mac_idle_replay_is_bit_identical(
        radios in 2usize..6,
        vcs in 1usize..4,
        packet_len in 2u32..9,
        seed in 0u64..1_000,
        sleepy in proptest::prelude::any::<bool>(),
        k in 0u64..160,
    ) {
        let mut cfg = ChannelConfig::paper(radios);
        cfg.seed = seed;
        cfg.sleepy_receivers = sleepy;
        let mut mac = TokenMac::new(cfg);
        let mut world = World::new(radios, vcs, 7, packet_len);
        let now = drain_to_quiescence(&mut mac, &mut world, 0);
        assert_idle_replay(
            mac,
            radios,
            vcs,
            now,
            k,
            |m, c, v, a| m.step(c, v, a),
            |m, c, n, a| m.idle_advance(c, n, a),
        );
    }

    /// Control-packet MAC: same property, including leftover turn-timer
    /// states right after a data turn drains.
    #[test]
    fn control_mac_idle_replay_is_bit_identical(
        radios in 2usize..6,
        vcs in 1usize..4,
        packet_len in 1u32..9,
        seed in 0u64..1_000,
        sleepy in proptest::prelude::any::<bool>(),
        k in 0u64..160,
    ) {
        let mut cfg = ChannelConfig::paper(radios);
        cfg.seed = seed;
        cfg.sleepy_receivers = sleepy;
        let mut mac = ControlPacketMac::new(cfg);
        let mut world = World::new(radios, vcs, 7, packet_len);
        let now = drain_to_quiescence(&mut mac, &mut world, 0);
        assert_idle_replay(
            mac,
            radios,
            vcs,
            now,
            k,
            |m, c, v, a| m.step(c, v, a),
            |m, c, n, a| m.idle_advance(c, n, a),
        );
    }
}

/// The token MAC declines quiescence mid-transmission: a scheduled
/// packet pins it to full stepping.
#[test]
fn token_mac_declines_quiescence_mid_transmission() {
    let mut mac = TokenMac::new(ChannelConfig::paper(2));
    let world = World::new(2, 2, 3, 4);
    assert!(mac.is_quiescent(), "fresh MAC is quiescent");
    // Step until the whole-packet transmission begins.
    for now in 0..40u64 {
        let mut actions = MediumActions::new();
        mac.step(now, &world.view(), &mut actions);
        if !mac.is_quiescent() {
            return; // entered Transmitting, as required
        }
    }
    panic!("MAC never started transmitting a whole buffered packet");
}

/// The control MAC declines quiescence while scheduled deliveries are
/// pending.
#[test]
fn control_mac_declines_quiescence_with_pending_data() {
    let mut mac = ControlPacketMac::new(ChannelConfig::paper(2));
    let world = World::new(2, 2, 3, 4);
    assert!(mac.is_quiescent(), "fresh MAC is quiescent");
    for now in 0..40u64 {
        let mut actions = MediumActions::new();
        mac.step(now, &world.view(), &mut actions);
        if !mac.is_quiescent() {
            return; // schedule announced, deliveries pending
        }
    }
    panic!("MAC never scheduled the buffered packet");
}
