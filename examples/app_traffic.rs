//! Application-specific traffic (the paper's §IV.D): run
//! SynFull-substitute PARSEC/SPLASH-2 models on the wireless and
//! interposer systems and compare latency and energy per application.
//!
//! ```sh
//! cargo run --release --example app_traffic [app ...]
//! ```

use wimnet::core::{Experiment, SystemConfig};
use wimnet::topology::Architecture;
use wimnet::traffic::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let apps: Vec<_> = if requested.is_empty() {
        vec![
            profiles::blackscholes(),
            profiles::canneal(),
            profiles::fft(),
            profiles::radix(),
        ]
    } else {
        requested
            .iter()
            .map(|name| {
                profiles::by_name(name)
                    .unwrap_or_else(|| panic!("unknown application '{name}'"))
            })
            .collect()
    };

    println!(
        "{:<14} {:<9} {:>14} {:>14} {:>12} {:>12}",
        "app", "suite", "wl lat (cyc)", "ip lat (cyc)", "lat gain", "energy gain"
    );
    for profile in apps {
        let wireless = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        let interposer =
            SystemConfig::xcym(4, 4, Architecture::Interposer).quick_test_profile();
        let w = Experiment::app(&wireless, profile.clone()).run()?;
        let i = Experiment::app(&interposer, profile.clone()).run()?;
        let lat_gain = (1.0 - w.latency_cycles() / i.latency_cycles()) * 100.0;
        let e_gain = (1.0 - w.packet_energy_nj() / i.packet_energy_nj()) * 100.0;
        println!(
            "{:<14} {:<9} {:>14.1} {:>14.1} {:>11.1}% {:>11.1}%",
            profile.name,
            profile.suite,
            w.latency_cycles(),
            i.latency_cycles(),
            lat_gain,
            e_gain,
        );
    }
    println!(
        "\nthe paper reports average reductions of 54% (latency) and 45% \
         (energy) across its application set."
    );
    Ok(())
}
