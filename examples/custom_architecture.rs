//! Going beyond the paper's presets: assemble a custom multichip system
//! from the lower-level crates — custom chip counts, routing policy,
//! energy constants and the faithful serialized MAC — and drive the
//! cycle-accurate engine directly.
//!
//! ```sh
//! cargo run --release --example custom_architecture
//! ```

use wimnet::energy::EnergyModel;
use wimnet::noc::{Network, NocConfig, PacketDesc};
use wimnet::routing::{deadlock, Routes, RoutingPolicy};
use wimnet::topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet::wireless::{ChannelConfig, ControlPacketMac};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-chip, 2-stack system with 32-core chips: not one of the
    // paper's configurations, but every layer composes the same way.
    let mut mc = MultichipConfig::xcym(2, 2, Architecture::Wireless);
    mc.cores_per_chip = 32;
    mc.cores_per_wi = 16; // two WIs per chip
    let layout = MultichipLayout::build(&mc)?;
    println!(
        "custom system: {} — {} switches, {} wireless interfaces",
        mc.label(),
        layout.graph().node_count(),
        layout.wireless_interfaces().len(),
    );

    // Tree routing (the paper's literal deadlock-freedom argument), with
    // the channel-dependency-graph proof run explicitly.
    let routes = Routes::build(layout.graph(), RoutingPolicy::tree())?;
    assert!(
        deadlock::find_cycle(layout.graph(), &routes).is_none(),
        "tree routing must be deadlock-free"
    );
    println!(
        "tree routing: avg {:.2} hops, channel dependency graph acyclic",
        routes.average_hops()?
    );

    // A pessimistic 65 nm corner: double leakage, slower wires.
    let mut energy = EnergyModel::paper_65nm();
    energy.switch_static_base = energy.switch_static_base * 2.0;
    energy.wire_pj_per_bit_per_mm *= 1.5;

    let mut cfg = NocConfig::paper();
    cfg.energy = energy;
    let mut net = Network::new(&layout, routes, cfg)?;

    // The faithful §III.D medium: one serialized 16 Gbps channel with
    // control packets and sleepy receivers.
    let channel = ChannelConfig::paper(net.radio_count());
    net.attach_medium(Box::new(ControlPacketMac::new(channel)));

    // Drive it by hand: a hot pair of cores on opposite chips.
    let src = layout.core_nodes()[3];
    let dst = layout.core_nodes()[32 + 17];
    for k in 0..8 {
        net.inject(PacketDesc::new(src, dst, 64, k * 400));
    }
    for _ in 0..8_000 {
        net.step();
    }

    let stats = net.stats();
    println!(
        "delivered {} packets; mean latency {:.1} cycles over the serialized channel",
        stats.packets_delivered(),
        stats.average_latency().unwrap_or(f64::NAN),
    );
    println!("energy:\n{}", net.meter());
    Ok(())
}
