//! Disintegration study (the scenario motivating the paper's §I): keep
//! 64 cores and 400 mm² of silicon but split them over 1, 2, 4 or 8
//! chiplets, and watch what each interconnect architecture pays for the
//! resulting off-chip traffic.
//!
//! ```sh
//! cargo run --release --example disintegration
//! ```

use wimnet::core::{Experiment, SystemConfig};
use wimnet::topology::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<6} {:<12} {:>16} {:>18} {:>14}",
        "chips", "architecture", "bw/core (Gbps)", "energy/pkt (nJ)", "latency (cyc)"
    );
    for chips in [1usize, 2, 4, 8] {
        for arch in [Architecture::Interposer, Architecture::Wireless] {
            let config = SystemConfig::xcym(chips, 4, arch).quick_test_profile();
            let outcome = Experiment::saturation(&config, 0.20).run()?;
            println!(
                "{:<6} {:<12} {:>16.2} {:>18.2} {:>14}",
                chips,
                arch.label(),
                outcome.bandwidth_gbps_per_core,
                outcome.packet_energy_nj(),
                outcome
                    .avg_latency_cycles
                    .map(|l| format!("{l:.0}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!(
        "\nreading: disintegration turns on-chip traffic into off-chip \
         traffic; the wireless fabric's single-hop links keep both the \
         energy and the bandwidth penalty flat, which is the paper's \
         core argument for wireless chiplet integration."
    );
    Ok(())
}
