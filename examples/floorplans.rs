//! Print the package floorplans of the paper's systems as ASCII maps —
//! a quick way to see what 1C4M / 4C4M / 8C4M actually look like and
//! where the wireless interfaces sit (MAD-optimal cluster centres).
//!
//! ```sh
//! cargo run --example floorplans
//! ```

use wimnet::topology::{ascii_map, Architecture, MultichipConfig, MultichipLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (chips, arch) in [
        (1usize, Architecture::Wireless),
        (4, Architecture::Wireless),
        (8, Architecture::Wireless),
        (4, Architecture::Substrate),
    ] {
        let layout = MultichipLayout::build(&MultichipConfig::xcym(chips, 4, arch))?;
        println!("{}", ascii_map(&layout));
        if arch == Architecture::Wireless {
            let wis = layout.wireless_interfaces();
            println!(
                "{} wireless interfaces; MAC sequence {:?}\n",
                wis.len(),
                wis.iter().map(|w| w.id.index()).collect::<Vec<_>>()
            );
        }
    }
    Ok(())
}
