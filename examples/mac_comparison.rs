//! The §III.D argument, measured: compare the paper's control-packet
//! MAC against the token MAC baseline on the faithful serialized
//! channel, including the sleepy-receiver energy effect — and, since
//! both MACs became quiescence-capable, the idle fast-forward each
//! enables on low-load runs (see `docs/fast_forward.md`).
//!
//! ```sh
//! cargo run --release --example mac_comparison
//! ```

use wimnet::core::report::{format_energy_table, format_link_utilization_table, format_memory_table};
use wimnet::core::{Experiment, MacKind, SystemConfig, WirelessModel};
use wimnet::telemetry::TelemetryConfig;
use wimnet::topology::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A light load the 16 Gbps serialized channel can actually carry.
    let load = 0.0015;
    println!(
        "{:<34} {:>13} {:>15} {:>16}",
        "MAC (serialized 16 Gbps channel)", "delivered", "latency (cyc)", "energy/pkt (nJ)"
    );
    for (name, mac, sleepy) in [
        ("control packets + sleepy receivers", MacKind::ControlPacket, true),
        ("control packets, always-on rx", MacKind::ControlPacket, false),
        ("token passing (whole packets)", MacKind::Token, true),
    ] {
        let mut cfg = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        cfg.wireless = WirelessModel::SharedChannel { mac };
        cfg.sleepy_receivers = sleepy;
        match Experiment::uniform_random(&cfg, load).run() {
            Ok(o) => println!(
                "{:<34} {:>13} {:>15.1} {:>16.2}",
                name,
                o.packets_delivered(),
                o.avg_latency_cycles.unwrap_or(f64::NAN),
                o.packet_energy_nj(),
            ),
            Err(e) => println!("{name:<34} failed: {e}"),
        }
    }
    println!(
        "\nreading (§III.D): the token MAC must buffer whole packets at \
         each WI (deeper buffers, more static power) and holds the \
         channel longer; the control-packet MAC ships partial packets \
         and power-gates unaddressed receivers."
    );

    // The fast-forward fast path: at a deep-idle load (≈20% of channel
    // capacity) both MACs drain between packets, declare quiescence,
    // and the driver skips the inter-packet idle — bit-identically to
    // stepping every cycle (tests/determinism.rs).
    let idle_load = 0.00001;
    println!(
        "\n{:<34} {:>13} {:>17} {:>11} {:>16}",
        "idle fast-forward (paper windows)",
        "delivered",
        "skipped cycles",
        "skipped %",
        "meter adds saved"
    );
    for (name, mac) in [
        ("control-packet MAC", MacKind::ControlPacket),
        ("token MAC", MacKind::Token),
    ] {
        let mut cfg = SystemConfig::xcym(4, 4, Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac };
        let total = cfg.warmup_cycles + cfg.measure_cycles;
        match Experiment::uniform_random(&cfg, idle_load).run() {
            Ok(o) => println!(
                "{:<34} {:>13} {:>11} / {:<4} {:>10.1}% {:>16}",
                name,
                o.packets_delivered(),
                o.fast_forwarded_cycles,
                total,
                100.0 * o.fast_forwarded_cycles as f64 / total as f64,
                o.meter_adds_saved(),
            ),
            Err(e) => println!("{name:<34} failed: {e}"),
        }
    }
    println!(
        "\nboth serialized MACs now satisfy the quiescence contract \
         (docs/fast_forward.md): idle token rotation and header-only \
         control passes replay closed-form, and the exact-sum meter \
         collapses each skipped stretch's per-cycle charges into O(1) \
         repeated adds (the meter-adds-saved column), so low-load \
         MAC-comparison sweeps run at the per-packet work floor."
    );

    // The inside view: re-run the paper's MAC with telemetry attached
    // (zero observer effect — the outcome above is bit-identical with
    // or without it, tests/determinism.rs) and show where the flits
    // went, where the channel time went, and what each table costs.
    let mut cfg = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
    cfg.wireless = WirelessModel::SharedChannel { mac: MacKind::ControlPacket };
    cfg.telemetry = TelemetryConfig::counters();
    let o = Experiment::uniform_random(&cfg, load).run()?;
    let t = o.telemetry.as_ref().expect("telemetry was enabled");
    println!("\nper-link utilization / credit-stall heatmap (control-packet MAC):");
    println!("{}", format_link_utilization_table(t));
    for m in &t.macs {
        println!(
            "MAC turns: {} ({} passes), control flits {}, data flits {}, \
             retransmissions {}",
            m.turns, m.passes, m.control_flits, m.data_flits, m.collisions
        );
    }
    println!(
        "latency percentiles (rank-exact): p50 {:?}  p99 {:?}  p99.9 {:?}  max {:?}",
        o.p50_latency_cycles, o.p99_latency_cycles, o.p999_latency_cycles, o.max_latency_cycles
    );
    println!("\nenergy by category:");
    println!("{}", format_energy_table(&o.energy));
    println!("memory stacks:");
    println!("{}", format_memory_table(&o.memory));
    Ok(())
}
