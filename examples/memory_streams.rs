//! The cycle-accurate memory controllers under the four address
//! streams: drive read-heavy closed-loop traffic into the stacks and
//! compare per-stack page behaviour (hit / empty / miss), queue
//! occupancy and bank-level parallelism — the statistics the legacy
//! closed-form stack model could not produce (see `docs/memory.md`).
//!
//! ```sh
//! cargo run --release --example memory_streams
//! ```

use wimnet::core::report::format_memory_table;
use wimnet::core::{Experiment, SystemConfig};
use wimnet::memory::SchedulerPolicy;
use wimnet::topology::Architecture;
use wimnet::traffic::AddressStreamSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let streams = [
        ("sequential (legacy counter walk)", AddressStreamSpec::Sequential),
        (
            "strided x96 blocks (row-buffer hostile)",
            AddressStreamSpec::Strided { stride_blocks: 96 },
        ),
        (
            "uniform over 256 MiB",
            AddressStreamSpec::Uniform { region_blocks: 1 << 22 },
        ),
        (
            "hot-row (70% in 16 blocks)",
            AddressStreamSpec::HotRow {
                region_blocks: 1 << 20,
                hot_blocks: 16,
                hot_fraction: 0.7,
            },
        ),
    ];
    // Read-heavy closed-loop traffic: 90% of packets target memory and
    // every one is a read request pulled back as a full data reply.
    let (load, memory_fraction) = (0.02, 0.9);
    for (name, stream) in streams {
        let mut cfg =
            SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        cfg.address_stream = stream;
        let outcome = Experiment::memory_reads(&cfg, load, memory_fraction).run()?;
        println!("== {name} ==");
        print!("{}", format_memory_table(&outcome.memory));
        let accesses: u64 = outcome.memory.iter().map(|m| m.accesses).sum();
        let hits: u64 = outcome.memory.iter().map(|m| m.page_hits).sum();
        println!(
            "total: {accesses} accesses, {:.1}% row hits, {} packets delivered\n",
            if accesses == 0 { 0.0 } else { 100.0 * hits as f64 / accesses as f64 },
            outcome.packets_delivered(),
        );
    }

    // The scheduler axis, isolated on the hot-row stream: FR-FCFS
    // reorders toward open rows, FCFS pays the arrival order.
    println!("== scheduler policy on the hot-row stream ==");
    for (name, scheduler) in [
        ("FR-FCFS (row hits first)", SchedulerPolicy::FrFcfs),
        ("FCFS (strict arrival order)", SchedulerPolicy::Fcfs),
    ] {
        let mut cfg =
            SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        cfg.address_stream = AddressStreamSpec::HotRow {
            region_blocks: 1 << 20,
            hot_blocks: 16,
            hot_fraction: 0.7,
        };
        cfg.mem_controller.scheduler = scheduler;
        let outcome = Experiment::memory_reads(&cfg, load, memory_fraction).run()?;
        let accesses: u64 = outcome.memory.iter().map(|m| m.accesses).sum();
        let hits: u64 = outcome.memory.iter().map(|m| m.page_hits).sum();
        let avg_q: f64 = outcome.memory.iter().map(|m| m.avg_queue_depth).sum::<f64>()
            / outcome.memory.len() as f64;
        println!(
            "{name:<28} {:.1}% hits  avg queue {avg_q:.2}  latency {:.1} cyc",
            if accesses == 0 { 0.0 } else { 100.0 * hits as f64 / accesses as f64 },
            outcome.avg_latency_cycles.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nreading: sequential streams keep rows open (hits dominate), large \
         uniform regions force activations, and the hot-row mix sits between — \
         with FR-FCFS converting hot-row reuse into extra row hits that plain \
         FCFS leaves on the table."
    );
    Ok(())
}
