//! Quickstart: build the paper's 4C4M wireless multichip system, run
//! uniform random traffic, and read the three §IV metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wimnet::core::{Experiment, SystemConfig};
use wimnet::topology::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 4C4M system: four 16-core chips and four in-package
    // memory stacks, wirelessly interconnected. `SystemConfig::xcym`
    // carries every §IV parameter (8 VCs x 16-flit buffers, 64-flit
    // packets of 32-bit flits, 2.5 GHz, 65 nm energy constants).
    let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
    println!("system: {}", config.label());
    println!(
        "cores: {}  stacks: {}  packet: {} flits x {} bits",
        config.multichip.total_cores(),
        config.multichip.num_stacks,
        config.packet_flits,
        config.flit_bits,
    );

    // Uniform random traffic at a moderate load, 20% memory accesses.
    let outcome = Experiment::uniform_random(&config, 0.004).run()?;

    println!("\n--- outcome ({}) ---", outcome.workload);
    println!("packets delivered : {}", outcome.packets_delivered());
    println!(
        "bandwidth/core    : {:.2} Gbps",
        outcome.bandwidth_gbps_per_core
    );
    println!(
        "avg packet latency: {:.1} cycles",
        outcome.latency_cycles()
    );
    println!(
        "avg packet energy : {:.2} nJ",
        outcome.packet_energy_nj()
    );

    println!("\n--- energy breakdown ---");
    for (category, energy) in &outcome.energy.entries {
        if energy.joules() > 0.0 {
            println!("{:<18} {}", category.label(), energy);
        }
    }
    Ok(())
}
