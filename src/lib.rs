//! # wimnet
//!
//! A production-quality Rust reproduction of *"Energy-Efficient Wireless
//! Interconnection Framework for Multichip Systems with In-package Memory
//! Stacks"* (Shamim, Ahmed, Mansoor, Ganguly — IEEE SOCC 2017).
//!
//! This facade crate re-exports the full public API of the `wimnet-*`
//! workspace:
//!
//! * [`energy`] — energy units, technology constants, conservation-checked
//!   accounting.
//! * [`topology`] — XCYM multichip layouts (substrate / interposer /
//!   wireless) with explicit package geometry.
//! * [`routing`] — deterministic Dijkstra forwarding tables, tree and
//!   up*/down* deadlock-free policies.
//! * [`noc`] — the cycle-accurate wormhole NoC engine (virtual channels,
//!   credits, 3-stage pipelined switches, rate-limited links).
//! * [`wireless`] — 60 GHz OOK transceivers, the SOCC'17 control-packet MAC
//!   with partial packets and sleepy receivers, and the token MAC baseline.
//! * [`memory`] — in-package stacked DRAM with TSVs and wide I/O.
//! * [`traffic`] — uniform-random, permutation and SynFull-style
//!   application workloads.
//! * [`telemetry`] — zero-observer-effect counters, fast-forward-aware
//!   time series, mergeable latency histograms and Chrome-trace export
//!   (`docs/observability.md`).
//! * [`core`] — the paper's framework: architecture presets, full-system
//!   assembly, metrics and the Fig 2–6 experiment suite.
//!
//! # Quickstart
//!
//! ```
//! use wimnet::core::{Experiment, SystemConfig};
//! use wimnet::topology::Architecture;
//!
//! // Simulate a small wireless multichip system under uniform traffic.
//! let config = SystemConfig::xcym(4, 4, Architecture::Wireless)
//!     .quick_test_profile();
//! let outcome = Experiment::uniform_random(&config, 0.005).run()?;
//! assert!(outcome.packets_delivered() > 0);
//! # Ok::<(), wimnet::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]

pub use wimnet_core as core;
pub use wimnet_energy as energy;
pub use wimnet_memory as memory;
pub use wimnet_noc as noc;
pub use wimnet_routing as routing;
pub use wimnet_telemetry as telemetry;
pub use wimnet_topology as topology;
pub use wimnet_traffic as traffic;
pub use wimnet_wireless as wireless;
