//! Crash, corruption, and concurrency harness for the result catalog
//! (`wimnet::core::catalog`, `docs/sweeps.md` "The result catalog").
//!
//! The catalog's contract is brutal on purpose: whatever happens to
//! the directory — a killed writer, truncated files, entries from a
//! different engine version, two shards racing on one key — a
//! subsequent `run_cached` must converge on the **bit-identical**
//! outcome vector a fresh uncached run would produce.  These tests
//! damage the catalog in every one of those ways and check exactly
//! that.

mod common;

use std::fs;
use std::path::PathBuf;

use common::{splitmix, temp_dir, vector_bytes};

use wimnet::core::{Catalog, CatalogEntry, ScenarioGrid, ENGINE_VERSION};

/// A fresh per-test catalog directory under the system temp dir.
fn temp_catalog(tag: &str) -> PathBuf {
    temp_dir("wimnet-catalog-harness", tag)
}

/// The shared 8-point quick grid (2 architectures x 2 loads x 2 seeds).
fn grid() -> ScenarioGrid {
    common::small_grid("catalog-harness")
}

/// Kill a sweep mid-flight (miss budget), damage the partial catalog —
/// delete a random subset of entries, truncate another one, leave a
/// half-written temp file behind — and resume.  The resumed sweep must
/// equal a fresh uncached run bit-for-bit.
#[test]
fn crash_damaged_catalog_resumes_to_the_uncached_result() {
    let g = grid();
    let n = g.len();
    assert_eq!(n, 8);

    // Reference: a fresh, uncached run of the same grid.
    let reference_dir = temp_catalog("crash-reference");
    let reference = g
        .run_cached(&Catalog::open(&reference_dir).unwrap(), 2, 2)
        .unwrap();
    assert_eq!(reference.misses, n);

    // The "crashed" sweep: budget kills it after 5 of 8 points.
    let dir = temp_catalog("crash-victim");
    let catalog = Catalog::open(&dir).unwrap();
    let killed = g
        .run_cached_shard_with_budget(&catalog, 0, 1, 2, 2, Some(5))
        .unwrap();
    assert!(!killed.is_complete());
    assert_eq!(killed.pending, 3);
    assert!(killed.outcomes.is_empty(), "a truncated run carries no vector");

    // Damage pass over the partial catalog.
    let mut rng = 0xdead_beefu64;
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 5);
    // Delete a random subset (at least one)...
    let mut deleted = 0;
    for path in &entries {
        if splitmix(&mut rng).is_multiple_of(2) || deleted == 0 {
            fs::remove_file(path).unwrap();
            deleted += 1;
        }
    }
    // ...truncate a survivor halfway, if any survived...
    if let Some(survivor) = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
    {
        let bytes = fs::read(&survivor).unwrap();
        fs::write(&survivor, &bytes[..bytes.len() / 2]).unwrap();
    }
    // ...and plant a half-written temp file like a writer killed
    // mid-`fs::write` would leave.
    fs::write(
        dir.join("0123456789abcdef0123456789abcdef.json.tmp-999-0"),
        "{\"engine_version\": \"wim",
    )
    .unwrap();

    // Resume: a fresh Catalog handle, as a restarted process would own.
    let resumed_catalog = Catalog::open(&dir).unwrap();
    assert_eq!(resumed_catalog.sweep_temps(), 1, "abandoned temp swept");
    let resumed = g.run_cached(&resumed_catalog, 2, 2).unwrap();
    assert!(resumed.is_complete());
    assert!(resumed.misses > 0, "damage forced recomputation");
    assert_eq!(resumed.hits + resumed.misses, n);

    assert_eq!(resumed.outcomes, reference.outcomes);
    assert_eq!(
        vector_bytes(&resumed.outcomes),
        vector_bytes(&reference.outcomes),
        "resumed vector must be bit-identical to the uncached run"
    );

    // The catalog healed: one more run is all hits.
    let warm = g.run_cached(&resumed_catalog, 2, 2).unwrap();
    assert_eq!((warm.hits, warm.misses), (n, 0));

    let _ = fs::remove_dir_all(&reference_dir);
    let _ = fs::remove_dir_all(&dir);
}

/// Poisoned entries — a well-formed envelope from a different engine
/// version carrying a doctored outcome, and an entry overwritten with
/// garbage — are quarantined and recomputed, never served and never
/// fatal.
#[test]
fn poisoned_entries_are_quarantined_and_recomputed() {
    let g = grid();
    let n = g.len();
    let dir = temp_catalog("poison");
    let catalog = Catalog::open(&dir).unwrap();
    let first = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!(first.misses, n);

    let points = g.points();

    // Poison 1: a valid envelope claiming a *different engine version*,
    // wrapping an outcome doctored to be obviously wrong.  If the
    // version rule ever breaks, the doctored packet count gets served
    // and the equality assertion below catches it.
    let victim = &points[2];
    let fp = g.point_fingerprint(victim);
    let mut doctored = first.outcomes[2].clone();
    doctored.total_packets = doctored.total_packets.wrapping_add(123_456);
    let poison = CatalogEntry {
        engine_version: "wimnet-engine-v0".to_string(),
        fingerprint: fp.hex(),
        point: victim.clone(),
        outcome: doctored,
    };
    assert_ne!(poison.engine_version, ENGINE_VERSION);
    fs::write(
        dir.join(format!("{}.json", fp.hex())),
        serde_json::to_string_pretty(&poison).unwrap(),
    )
    .unwrap();

    // Poison 2: plain corruption — an entry that no longer parses.
    let fp2 = g.point_fingerprint(&points[5]);
    fs::write(dir.join(format!("{}.json", fp2.hex())), "{ this is not json").unwrap();

    // Both poisoned keys still "exist" (contains is a cheap probe)...
    assert!(catalog.contains(&fp) && catalog.contains(&fp2));
    // ...but a lookup refuses to serve either.
    assert_eq!(catalog.lookup(&fp), None);
    assert_eq!(catalog.lookup(&fp2), None);
    assert_eq!(catalog.quarantined(), 2);

    // The quarantine directory preserves both bodies for forensics.
    let quarantine: Vec<_> = fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(quarantine.len(), 2);
    assert!(quarantine.iter().any(|f| f.starts_with(&fp.hex())));
    assert!(quarantine.iter().any(|f| f.starts_with(&fp2.hex())));

    // A rerun recomputes exactly the two poisoned points and lands on
    // the reference vector — the doctored outcome is never served.
    let healed = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!((healed.hits, healed.misses), (n - 2, 2));
    assert_eq!(healed.outcomes, first.outcomes);
    assert_eq!(vector_bytes(&healed.outcomes), vector_bytes(&first.outcomes));

    // And the heal sticks: the next run is all hits.
    let warm = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!((warm.hits, warm.misses), (n, 0));

    let _ = fs::remove_dir_all(&dir);
}

/// Two threads filling **disjoint** shards of one catalog directory
/// meet in the middle; two threads racing over the **same** full
/// range dedupe through atomic rename to byte-identical entries.  No
/// torn file is ever observable.
#[test]
fn concurrent_shards_share_a_catalog_without_torn_entries() {
    let g = grid();
    let n = g.len();

    // Disjoint halves, one directory, two threads.
    let dir = temp_catalog("shards-disjoint");
    let catalog = Catalog::open(&dir).unwrap();
    let (left, right) = std::thread::scope(|s| {
        let a = s.spawn(|| g.run_cached_shard(&catalog, 0, 2, 2, 2).unwrap());
        let b = s.spawn(|| g.run_cached_shard(&catalog, 1, 2, 2, 2).unwrap());
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(left.indices, g.shard_range(0, 2));
    assert_eq!(right.indices, g.shard_range(1, 2));
    assert_eq!(left.misses + right.misses, n, "halves are disjoint");
    assert_eq!(catalog.len(), n);

    // The merged catalog serves the full grid without simulating.
    let merged = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!((merged.hits, merged.misses), (n, 0));
    let mut stitched = left.outcomes.clone();
    stitched.extend(right.outcomes.iter().cloned());
    assert_eq!(vector_bytes(&merged.outcomes), vector_bytes(&stitched));

    // Overlapping shards: both threads run the *whole* grid against a
    // fresh directory.  Same-key writers race, atomic rename makes the
    // race a benign overwrite of identical bytes.
    let dir2 = temp_catalog("shards-overlap");
    let catalog2 = Catalog::open(&dir2).unwrap();
    let (run_a, run_b) = std::thread::scope(|s| {
        let a = s.spawn(|| g.run_cached(&catalog2, 2, 2).unwrap());
        let b = s.spawn(|| g.run_cached(&catalog2, 2, 2).unwrap());
        (a.join().unwrap(), b.join().unwrap())
    });
    assert!(run_a.is_complete() && run_b.is_complete());
    assert_eq!(vector_bytes(&run_a.outcomes), vector_bytes(&run_b.outcomes));
    assert_eq!(vector_bytes(&run_a.outcomes), vector_bytes(&merged.outcomes));
    assert_eq!(catalog2.len(), n, "duplicate work dedupes to one entry per key");

    // Every entry file in both directories parses as a complete,
    // self-consistent envelope — no torn read, no stray temp file.
    for d in [&dir, &dir2] {
        for entry in fs::read_dir(d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                continue;
            }
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(
                name.ends_with(".json"),
                "unexpected non-entry file {name:?} (torn write or leftover temp)"
            );
            let body = fs::read_to_string(&path).unwrap();
            let parsed: CatalogEntry = serde_json::from_str(&body).unwrap();
            assert_eq!(parsed.engine_version, ENGINE_VERSION);
            assert_eq!(format!("{}.json", parsed.fingerprint), name);
        }
    }

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

/// The v9 engine bump (`wimnet-engine-v9`, rank-exact latency
/// percentiles) invalidates every `wimnet-engine-v8` entry, through
/// both layers of the versioning rule (`docs/sweeps.md` §4):
///
/// 1. The engine version participates in the point fingerprint, so a
///    genuine pre-bump catalog keys its entries under v8 hashes that a
///    v9 sweep never probes — the first post-bump run is all misses
///    and simply recomputes, leaving the stale files inert.
/// 2. Even an entry planted *at* the current fingerprint path (a
///    copied or hand-edited file) is refused by the envelope check
///    when it claims `wimnet-engine-v8`, quarantined, and recomputed —
///    its doctored energy bits are never served.
#[test]
fn pre_bump_v8_entries_are_never_served_and_resume_recomputes() {
    assert_eq!(ENGINE_VERSION, "wimnet-engine-v9");
    let g = grid();
    let n = g.len();
    let dir = temp_catalog("v8-quarantine");
    let catalog = Catalog::open(&dir).unwrap();
    let reference = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!(reference.misses, n);

    // Layer 1: a "pre-bump catalog" — v8 envelopes under hashes a v9
    // sweep never computes.  Wipe the v9 entries first so any hit at
    // all would have to come from the stale files.
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            fs::remove_file(path).unwrap();
        }
    }
    for (i, point) in g.points().iter().enumerate() {
        let mut stale = reference.outcomes[i].clone();
        // Doctor the outcome so serving it would be caught below.
        stale.total_packets = stale.total_packets.wrapping_add(999);
        let entry = CatalogEntry {
            engine_version: "wimnet-engine-v8".to_string(),
            fingerprint: format!("{i:032x}"),
            point: point.clone(),
            outcome: stale,
        };
        fs::write(
            dir.join(format!("{i:032x}.json")),
            serde_json::to_string_pretty(&entry).unwrap(),
        )
        .unwrap();
    }
    let resumed_catalog = Catalog::open(&dir).unwrap();
    let resumed = g.run_cached(&resumed_catalog, 2, 2).unwrap();
    assert_eq!(
        (resumed.hits, resumed.misses),
        (0, n),
        "a v9 sweep must never hit a v8-keyed entry"
    );
    assert_eq!(resumed.outcomes, reference.outcomes);
    assert_eq!(vector_bytes(&resumed.outcomes), vector_bytes(&reference.outcomes));

    // Layer 2: plant a v8 envelope at the *current* fingerprint path.
    let victim = &g.points()[3];
    let fp = g.point_fingerprint(victim);
    let mut doctored = reference.outcomes[3].clone();
    doctored.total_packets = doctored.total_packets.wrapping_add(123_456);
    let planted = CatalogEntry {
        engine_version: "wimnet-engine-v8".to_string(),
        fingerprint: fp.hex(),
        point: victim.clone(),
        outcome: doctored,
    };
    fs::write(
        dir.join(format!("{}.json", fp.hex())),
        serde_json::to_string_pretty(&planted).unwrap(),
    )
    .unwrap();
    assert!(resumed_catalog.contains(&fp));
    assert_eq!(
        resumed_catalog.lookup(&fp),
        None,
        "a v8 envelope at a v9 path must be refused"
    );
    let healed = g.run_cached(&resumed_catalog, 2, 2).unwrap();
    assert_eq!((healed.hits, healed.misses), (n - 1, 1));
    assert_eq!(vector_bytes(&healed.outcomes), vector_bytes(&reference.outcomes));

    // The heal sticks, and the stale v8 files stay inert.
    let warm = g.run_cached(&resumed_catalog, 2, 2).unwrap();
    assert_eq!((warm.hits, warm.misses), (n, 0));

    let _ = fs::remove_dir_all(&dir);
}

/// The headline acceptance check: a second `run_cached` of the same
/// grid performs **zero** simulation (miss counter is the witness) and
/// returns the bit-identical vector.
#[test]
fn warm_rerun_simulates_nothing_and_matches_bitwise() {
    let g = grid();
    let dir = temp_catalog("warm-rerun");
    let catalog = Catalog::open(&dir).unwrap();

    let cold = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!((cold.hits, cold.misses), (0, g.len()));

    let warm = g.run_cached(&catalog, 2, 2).unwrap();
    assert_eq!(
        (warm.hits, warm.misses, warm.pending),
        (g.len(), 0, 0),
        "zero simulation on a warm catalog"
    );
    assert_eq!(warm.outcomes, cold.outcomes);
    assert_eq!(vector_bytes(&warm.outcomes), vector_bytes(&cold.outcomes));

    // Different thread/chunk shapes must not perturb the served bytes.
    for (threads, chunk) in [(1, 1), (3, 2), (4, 8)] {
        let again = g.run_cached(&catalog, threads, chunk).unwrap();
        assert_eq!(again.misses, 0);
        assert_eq!(vector_bytes(&again.outcomes), vector_bytes(&cold.outcomes));
    }

    let _ = fs::remove_dir_all(&dir);
}
