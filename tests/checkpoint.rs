//! Differential resume-equivalence harness for full-engine snapshots
//! (`wimnet::core::checkpoint`, `docs/checkpoint.md`).
//!
//! The headline invariant: **snapshot → restore → run is bit-identical
//! to the uninterrupted run** — the full [`RunOutcome`] (meter limbs,
//! latency bits, every energy category, per-stack memory statistics)
//! and the engine's bit-level fingerprint, for every architecture,
//! both serialized MACs, closed-loop memory traffic, and with idle
//! fast-forward engaged.  The corruption tests mirror
//! `tests/catalog.rs`: whatever happens to the checkpoint directory,
//! a resume either serves a validated snapshot or pays a cold start —
//! never a wrong answer, never an abort.

mod common;

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use common::{quick, system_fingerprint, temp_dir, vector_bytes};

use wimnet::core::{
    Catalog, CheckpointEntry, CheckpointStore, MacKind, MultichipSystem, SystemConfig,
    WirelessModel, ENGINE_VERSION,
};
use wimnet::topology::Architecture;
use wimnet::traffic::{InjectionProcess, UniformRandom, Workload};

/// A fresh per-test checkpoint directory under the system temp dir.
fn temp_store(tag: &str) -> PathBuf {
    temp_dir("wimnet-checkpoint-harness", tag)
}

/// The canonical closed-loop workload: uniform-random writes plus a
/// `read_share` of memory reads that return through the stacks'
/// controllers and the reply scheduler.
fn reads(cfg: &SystemConfig, rate: f64, read_share: f64) -> UniformRandom {
    UniformRandom::new(
        cfg.multichip.total_cores(),
        cfg.multichip.num_stacks,
        0.9,
        InjectionProcess::Bernoulli { rate },
        cfg.packet_flits,
        cfg.seed,
    )
    .with_memory_reads(read_share, 8)
}

/// The differential proof, one scenario at a time:
///
/// 1. run `cfg` + `make_workload()` uninterrupted (the reference);
/// 2. run a *fresh* pair to `stop`, snapshot, throw the system away;
/// 3. build another fresh system, restore the snapshot, resume with a
///    *fresh* workload (generation is a pure function of the cycle, so
///    the workload is rebuilt, not snapshotted);
/// 4. assert outcome equality (full `PartialEq` *and* canonical JSON
///    bytes), bit-level engine fingerprints, and per-stack memory
///    statistics.
///
/// Returns the reference system for scenario-specific follow-ups
/// (e.g. "fast-forward actually engaged").
fn assert_resume_equivalent(
    what: &str,
    cfg: &SystemConfig,
    make_workload: &dyn Fn() -> Box<dyn Workload>,
    stop: u64,
) -> MultichipSystem {
    let mut reference = MultichipSystem::build(cfg).expect("system builds");
    let mut w = make_workload();
    let ref_outcome = reference.run(w.as_mut()).expect("uninterrupted run");

    let snapshot = {
        let mut first = MultichipSystem::build(cfg).expect("system builds");
        let mut w = make_workload();
        let reached = first.run_until(w.as_mut(), 0, stop).expect("partial run");
        let snap = first.snapshot();
        assert_eq!(snap.cycle, reached, "{what}: snapshot cursor != cursor reached");
        snap
    };
    assert!(
        snapshot.cycle < reference.run_total_cycles_public(),
        "{what}: snapshot landed past the end — the scenario no longer interrupts anything"
    );

    let mut resumed = MultichipSystem::build(cfg).expect("system builds");
    resumed.restore(&snapshot).expect("restore succeeds");
    let mut w = make_workload();
    let res_outcome = resumed
        .run_from(w.as_mut(), snapshot.cycle)
        .expect("resumed run");

    assert_eq!(
        res_outcome, ref_outcome,
        "{what}: resumed RunOutcome diverged from the uninterrupted run"
    );
    assert_eq!(
        vector_bytes(std::slice::from_ref(&res_outcome)),
        vector_bytes(std::slice::from_ref(&ref_outcome)),
        "{what}: resumed outcome bytes diverged"
    );
    assert_eq!(
        system_fingerprint(&resumed, res_outcome.avg_latency_cycles),
        system_fingerprint(&reference, ref_outcome.avg_latency_cycles),
        "{what}: bit-level engine fingerprint diverged"
    );
    assert_eq!(
        resumed.memory_stats(),
        reference.memory_stats(),
        "{what}: per-stack memory statistics diverged"
    );
    assert!(
        res_outcome.packets_delivered() > 0,
        "{what}: sanity — the scenario carried traffic"
    );
    reference
}

/// `run_total_cycles` is crate-private; the public config carries the
/// same sum.
trait TotalCycles {
    fn run_total_cycles_public(&self) -> u64;
}
impl TotalCycles for MultichipSystem {
    fn run_total_cycles_public(&self) -> u64 {
        self.config().warmup_cycles + self.config().measure_cycles
    }
}

/// The acceptance differential for every architecture: closed-loop
/// memory traffic (`read_share = 1.0`) at a load sparse enough that
/// idle fast-forward provably engages, interrupted mid-measurement.
#[test]
fn resume_equals_uninterrupted_for_every_architecture() {
    for arch in Architecture::ALL {
        let cfg = quick(arch);
        let stop = cfg.warmup_cycles + cfg.measure_cycles / 3;
        let reference = assert_resume_equivalent(
            &format!("arch/{arch}"),
            &cfg,
            &|| Box::new(reads(&cfg, 0.0004, 1.0)),
            stop,
        );
        assert!(
            reference.network().fast_forwarded_cycles() > 0,
            "{arch}: fast-forward never engaged — the differential lost its hard case"
        );
    }
}

/// The acceptance differential for both serialized-channel MACs: the
/// token and control-packet media carry per-cycle arbitration state
/// (turn owners, grant queues, in-flight control exchanges) that the
/// snapshot must capture exactly.
#[test]
fn resume_equals_uninterrupted_for_both_serialized_macs() {
    for mac in [MacKind::Token, MacKind::ControlPacket] {
        let mut cfg = quick(Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac };
        let stop = cfg.warmup_cycles + cfg.measure_cycles / 2;
        let reference = assert_resume_equivalent(
            &format!("shared-channel/{mac:?}"),
            &cfg,
            &|| Box::new(reads(&cfg, 0.0002, 0.5)),
            stop,
        );
        assert!(
            reference.network().fast_forwarded_cycles() > 0,
            "{mac:?}: fast-forward never engaged on the drained shared channel"
        );
    }
}

/// Edge case: snapshots at and around the warmup/measurement boundary.
/// `begin_measurement` fires at the top of the iteration where
/// `cycle == warmup_cycles`, so a snapshot taken exactly *at* the
/// boundary must resume into a run that still opens the window once —
/// and only once.  Cycle 0 (nothing has happened yet) and the cycle
/// right after the boundary ride along.
#[test]
fn snapshots_at_the_measurement_boundary_resume_exactly() {
    let cfg = quick(Architecture::Wireless);
    for stop in [0, cfg.warmup_cycles, cfg.warmup_cycles + 1] {
        assert_resume_equivalent(
            &format!("boundary/stop={stop}"),
            &cfg,
            &|| Box::new(reads(&cfg, 0.004, 0.5)),
            stop,
        );
    }
}

/// Edge case: snapshots landed by a fast-forward jump.  `run_until`
/// stops at the first iteration boundary **at or past** `stop`, so at
/// a sparse load the snapshot cursor regularly overshoots the
/// requested cycle — the snapshot is taken exactly where a
/// mid-fast-forward checkpoint mark would fire.
#[test]
fn snapshots_landed_by_a_fast_forward_jump_resume_exactly() {
    let cfg = quick(Architecture::Substrate);
    let make = || -> Box<dyn Workload> { Box::new(reads(&cfg, 0.0004, 1.0)) };
    // Replay the uninterrupted schedule one iteration at a time and
    // record every boundary, so the stop lines below can be placed in
    // the *middle* of real fast-forward jumps — `run_until` then lands
    // past the stop by construction.
    let total = cfg.warmup_cycles + cfg.measure_cycles;
    let mut probe = MultichipSystem::build(&cfg).unwrap();
    let mut w = make();
    let mut boundaries = vec![0u64];
    let mut cursor = 0;
    while cursor < total {
        cursor = probe.run_until(w.as_mut(), cursor, cursor + 1).unwrap();
        boundaries.push(cursor);
    }
    let stops: Vec<u64> = boundaries
        .windows(2)
        .filter(|w| w[1] - w[0] > 4 && w[1] < total)
        .map(|w| w[0] + (w[1] - w[0]) / 2)
        .take(3)
        .collect();
    assert!(
        !stops.is_empty(),
        "no fast-forward jump at this load — the edge case went untested"
    );
    for stop in stops {
        assert_resume_equivalent(&format!("ff-jump/stop={stop}"), &cfg, &make, stop);
    }
}

/// Edge case: snapshots *inside a control turn*.  At a busy load the
/// control-packet MAC is mid-exchange (request sent, grant pending,
/// data serializing) on most cycles, so snapshotting a run of
/// consecutive cycles is guaranteed to cut through live turns.
#[test]
fn snapshots_inside_a_control_turn_resume_exactly() {
    let mut cfg = quick(Architecture::Wireless);
    cfg.wireless = WirelessModel::SharedChannel { mac: MacKind::ControlPacket };
    let base = cfg.warmup_cycles + 200;
    for offset in 0..6 {
        let stop = base + offset;
        assert_resume_equivalent(
            &format!("control-turn/stop={stop}"),
            &cfg,
            &|| Box::new(reads(&cfg, 0.004, 0.5)),
            stop,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random scenarios — architecture x wireless model x load x
    /// read share x fast-forward on/off — interrupted at a random
    /// cycle must resume bit-identically.  This is the randomized
    /// closure over the hand-picked cases above.
    #[test]
    fn random_interruptions_resume_bit_identically(
        arch_idx in 0usize..3,
        wireless_idx in 0usize..3,
        seed in 0u64..1_000,
        load in 0.0005f64..0.005,
        read_share in prop_oneof![Just(0.0), Just(0.5), Just(1.0)],
        disable_ff in any::<bool>(),
        stop_frac in 0.05f64..0.95,
    ) {
        let arch = [
            Architecture::Substrate,
            Architecture::Interposer,
            Architecture::Wireless,
        ][arch_idx];
        let mut cfg = SystemConfig::xcym(2, 2, arch).quick_test_profile();
        cfg.seed = seed;
        cfg.disable_fast_forward = disable_ff;
        if arch == Architecture::Wireless {
            cfg.wireless = [
                WirelessModel::default(),
                WirelessModel::SharedChannel { mac: MacKind::Token },
                WirelessModel::SharedChannel { mac: MacKind::ControlPacket },
            ][wireless_idx];
        }
        let total = cfg.warmup_cycles + cfg.measure_cycles;
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let stop = (total as f64 * stop_frac) as u64;
        assert_resume_equivalent(
            &format!("prop/{arch}/w{wireless_idx}/seed={seed}/stop={stop}"),
            &cfg,
            &|| Box::new(reads(&cfg, load, read_share)),
            stop,
        );
    }
}

// ---------------------------------------------------------------------------
// Corruption harness: the checkpoint store's quarantine discipline,
// mirroring tests/catalog.rs.
// ---------------------------------------------------------------------------

/// Take a real mid-run snapshot and its scenario fingerprint.
fn snapshot_fixture(
    cfg: &SystemConfig,
) -> (wimnet::core::Snapshot, wimnet::core::Fingerprint) {
    let mut sys = MultichipSystem::build(cfg).unwrap();
    let mut w = reads(cfg, 0.004, 0.5);
    sys.run_until(&mut w, 0, 500).unwrap();
    let grid = wimnet::core::ScenarioGrid::new("ckpt-harness").seeds(&[cfg.seed]);
    let fp = grid.point_fingerprint(&grid.points()[0]);
    (sys.snapshot(), fp)
}

/// Truncated snapshot files, doctored fingerprints, doctored state
/// bytes, and foreign engine versions are all quarantined and reported
/// as misses — never served, never fatal.
#[test]
fn corrupt_checkpoints_are_quarantined_never_served() {
    let cfg = quick(Architecture::Wireless);
    let dir = temp_store("corruption");
    let store = CheckpointStore::open(&dir).unwrap();
    let (snap, fp) = snapshot_fixture(&cfg);
    let path = dir.join(format!("{}.ckpt.json", fp.hex()));

    // Corruption 1: a truncated file (writer killed mid-write would
    // leave a temp, but a torn disk can truncate the entry itself).
    store.store(&fp, &snap).unwrap();
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(store.contains(&fp), "the probe still sees the file");
    assert!(store.lookup(&fp).is_none(), "a truncated entry must not serve");
    assert_eq!(store.quarantined(), 1);
    assert!(!store.contains(&fp), "quarantine moved the file aside");

    // Corruption 2: a well-formed envelope whose fingerprint field was
    // doctored to a different scenario.
    store.store(&fp, &snap).unwrap();
    let mut entry: CheckpointEntry =
        serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
    entry.fingerprint = format!("{:032x}", 0xbad);
    fs::write(&path, serde_json::to_string_pretty(&entry).unwrap()).unwrap();
    assert!(store.lookup(&fp).is_none(), "a foreign fingerprint must not serve");
    assert_eq!(store.quarantined(), 2);

    // Corruption 3: a foreign engine version wrapping otherwise valid
    // state — the versioning rule refuses it even though everything
    // else checks out.
    store.store(&fp, &snap).unwrap();
    let mut entry: CheckpointEntry =
        serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
    "wimnet-engine-v7".clone_into(&mut entry.engine_version);
    assert_ne!(entry.engine_version, ENGINE_VERSION);
    fs::write(&path, serde_json::to_string_pretty(&entry).unwrap()).unwrap();
    assert!(store.lookup(&fp).is_none(), "a foreign engine version must not serve");
    assert_eq!(store.quarantined(), 3);

    // Corruption 4: doctored state — the envelope parses, version and
    // fingerprint check out, but the snapshot bytes changed under the
    // recorded content hash (here: a shifted cursor).
    store.store(&fp, &snap).unwrap();
    let mut entry: CheckpointEntry =
        serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
    entry.snapshot.cycle = entry.snapshot.cycle.wrapping_add(1);
    fs::write(&path, serde_json::to_string_pretty(&entry).unwrap()).unwrap();
    assert!(store.lookup(&fp).is_none(), "doctored state must fail the content hash");
    assert_eq!(store.quarantined(), 4);

    // The quarantine directory preserved all four bodies for forensics.
    let quarantine: Vec<_> = fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(quarantine.len(), 4);
    assert!(quarantine.iter().all(|f| f.starts_with(&fp.hex())));

    // None of it was fatal: a fresh store stores and serves again.
    store.store(&fp, &snap).unwrap();
    assert_eq!(store.lookup(&fp).unwrap().cycle, snap.cycle);

    let _ = fs::remove_dir_all(&dir);
}

/// A store littered with abandoned temp files (crashed writers) sweeps
/// them without touching live entries.
#[test]
fn abandoned_temps_are_swept_and_live_entries_survive() {
    let cfg = quick(Architecture::Wireless);
    let dir = temp_store("temps");
    let store = CheckpointStore::open(&dir).unwrap();
    let (snap, fp) = snapshot_fixture(&cfg);
    store.store(&fp, &snap).unwrap();
    fs::write(
        dir.join(format!("{}.ckpt.json.tmp-999-0", fp.hex())),
        "{\"engine_version\": \"wim",
    )
    .unwrap();
    fs::write(dir.join("feedfacefeedface.ckpt.json.tmp-999-1"), "").unwrap();

    assert_eq!(store.len(), 1, "temp debris is not a checkpoint");
    assert_eq!(store.sweep_temps(), 2);
    assert_eq!(store.sweep_temps(), 0, "sweep is idempotent");
    assert_eq!(store.lookup(&fp).unwrap().cycle, snap.cycle);
    assert_eq!(store.quarantined(), 0);

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Sweep-level warm start: kill -> resume -> bit-identical vector.
// ---------------------------------------------------------------------------

/// The CLI-visible contract end to end: a checkpointing sweep killed
/// mid-run leaves snapshots behind; the resumed sweep warm-starts from
/// them, lands the bit-identical outcome vector an uncached sweep
/// produces, and retires every spent checkpoint.
#[test]
fn killed_sweep_resumes_from_checkpoints_to_the_uncached_vector() {
    let g = common::small_grid("ckpt-sweep").checkpoint_every(200);
    let n = g.len();

    // Reference: a plain uncached run in its own catalog.
    let ref_dir = temp_store("sweep-reference");
    let reference = g.run_cached(&Catalog::open(&ref_dir).unwrap(), 2, 2).unwrap();
    assert_eq!(reference.misses, n);

    // The victim sweep: every point is killed at cycle 600, three
    // cadence marks in (200, 400, 600 — the kill check runs before the
    // iteration, so the 600 mark itself may or may not have landed).
    let cat_dir = temp_store("sweep-catalog");
    let ckpt_dir = temp_store("sweep-checkpoints");
    let catalog = Catalog::open(&cat_dir).unwrap();
    let checkpoints = CheckpointStore::open(&ckpt_dir).unwrap();
    let killed = g
        .run_cached_resumable(&catalog, &checkpoints, 2, 2, Some(600))
        .unwrap();
    assert_eq!(killed.pending, n, "every point was killed");
    assert!(killed.outcomes.is_empty(), "a killed sweep carries no vector");
    assert_eq!(checkpoints.len(), n, "each killed point left its latest snapshot");

    // Resume: warm-start every point from its snapshot.
    let resumed = g
        .run_cached_resumable(&catalog, &checkpoints, 2, 2, None)
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.misses, n, "nothing was in the catalog yet");
    assert_eq!(
        vector_bytes(&resumed.outcomes),
        vector_bytes(&reference.outcomes),
        "warm-started vector must be bit-identical to the uncached run"
    );
    assert!(
        checkpoints.is_empty(),
        "spent checkpoints must be retired once outcomes reach the catalog"
    );

    // The catalog is now warm; a third call simulates nothing, and
    // the checkpoint path is a no-op.
    let warm = g
        .run_cached_resumable(&catalog, &checkpoints, 2, 2, None)
        .unwrap();
    assert_eq!((warm.hits, warm.misses, warm.pending), (n, 0, 0));
    assert_eq!(vector_bytes(&warm.outcomes), vector_bytes(&reference.outcomes));

    for d in [&ref_dir, &cat_dir, &ckpt_dir] {
        let _ = fs::remove_dir_all(d);
    }
}

/// Shape-mismatched snapshots are a checkpoint error, not a panic:
/// restoring a 2x2 wireless snapshot into a substrate system (or a
/// different MAC) fails cleanly and leaves the target runnable.
#[test]
fn restore_rejects_cross_scenario_snapshots_cleanly() {
    let wireless = quick(Architecture::Wireless);
    let (snap, _) = snapshot_fixture(&wireless);

    // Different architecture: the media split differs.
    let substrate = quick(Architecture::Substrate);
    let mut target = MultichipSystem::build(&substrate).unwrap();
    assert!(target.restore(&snap).is_err(), "cross-architecture restore must fail");

    // The failed restore left the system untouched and runnable.
    let mut w = reads(&substrate, 0.004, 0.5);
    let outcome = target.run(&mut w).unwrap();
    assert!(outcome.packets_delivered() > 0);

    // Different scale: the component counts differ.
    let mut big = quick(Architecture::Wireless);
    big.multichip = wimnet::topology::MultichipConfig::xcym(8, 4, Architecture::Wireless);
    let mut target = MultichipSystem::build(&big).unwrap();
    assert!(target.restore(&snap).is_err(), "cross-scale restore must fail");
}
