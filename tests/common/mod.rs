//! Shared testkit for the umbrella integration tests.
//!
//! Every test crate under `tests/` re-grew the same scaffolding —
//! quick-profile config builders, bit-level run fingerprints, the
//! fast-forward differential assertion, temp-dir plumbing, canonical
//! outcome bytes — before this module centralised them.  Each test
//! binary compiles its own copy (`mod common;`), so helpers unused by
//! one binary are dead code there; hence the blanket allow.

#![allow(dead_code)]

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use wimnet::core::{MultichipSystem, RunOutcome, Scale, ScenarioGrid, SystemConfig};
use wimnet::topology::Architecture;
use wimnet::traffic::{InjectionProcess, TrafficEvent, UniformRandom, Workload};

// ---------------------------------------------------------------------------
// Config and grid builders
// ---------------------------------------------------------------------------

/// The canonical small system every determinism/checkpoint test runs:
/// 4 chips x 4 stacks at the quick test profile.
pub fn quick(arch: Architecture) -> SystemConfig {
    SystemConfig::xcym(4, 4, arch).quick_test_profile()
}

/// A small grid that still exercises several axes: 2 architectures x
/// 2 loads x 2 seeds = 8 points at quick scale.
pub fn small_grid(name: &str) -> ScenarioGrid {
    ScenarioGrid::new(name)
        .scale(Scale::Quick)
        .architectures(&[Architecture::Wireless, Architecture::Substrate])
        .chips(&[2])
        .stacks(&[2])
        .loads(&[0.002, 0.006])
        .seeds(&[11, 12])
}

/// A proptest strategy over the three compared architectures.
pub fn arch_strategy() -> impl Strategy<Value = Architecture> {
    prop_oneof![
        Just(Architecture::Substrate),
        Just(Architecture::Interposer),
        Just(Architecture::Wireless),
    ]
}

// ---------------------------------------------------------------------------
// Filesystem plumbing
// ---------------------------------------------------------------------------

/// A fresh per-test directory under the system temp dir, wiped of any
/// leftover from a previous run of the same (prefix, tag) pair.
pub fn temp_dir(prefix: &str, tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{prefix}-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Bit-level comparators
// ---------------------------------------------------------------------------

/// Canonical bytes of an outcome vector — "bit-identical" in the
/// harness tests means equal through this, not just `PartialEq`.
pub fn vector_bytes(outcomes: &[RunOutcome]) -> String {
    serde_json::to_string(&outcomes.to_vec()).unwrap()
}

/// A tiny deterministic generator for damage-site selection in the
/// corruption harnesses (the proptest shim's rng is per-test-name;
/// this keeps the subset stable and printable on failure).
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A finite f64 with a full random mantissa — stresses the shortest
/// round-trip float codec much harder than "nice" decimal literals.
pub fn gnarly_f64(bits: u64) -> f64 {
    let f = f64::from_bits(bits);
    if f.is_finite() {
        f
    } else {
        // Clear the exponent's top bit: the result is always finite.
        f64::from_bits(bits & !(1u64 << 62))
    }
}

/// Full bit-level fingerprint of a finished simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    pub packets_injected: u64,
    pub packets_delivered: u64,
    pub flits_delivered: u64,
    pub window_packets: u64,
    pub window_flits: u64,
    pub latency_sum_bits: u64,
    pub latency_max: Option<u64>,
    pub latency_min: Option<u64>,
    pub energy_total_bits: u64,
    pub energy_breakdown_bits: Vec<u64>,
}

/// Take the bit-level [`Fingerprint`] of a finished system.
pub fn system_fingerprint(sys: &MultichipSystem, avg_latency_cycles: Option<f64>) -> Fingerprint {
    let net = sys.network();
    let stats = net.stats();
    Fingerprint {
        packets_injected: stats.packets_injected(),
        packets_delivered: stats.packets_delivered(),
        flits_delivered: stats.flits_delivered(),
        window_packets: stats.window_packets_delivered(),
        window_flits: stats.window_flits_delivered(),
        latency_sum_bits: avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
        latency_max: stats.max_latency(),
        latency_min: stats.min_latency(),
        energy_total_bits: net.meter().total().picojoules().to_bits(),
        energy_breakdown_bits: net
            .meter()
            .breakdown()
            .entries
            .iter()
            .map(|(_, e)| e.picojoules().to_bits())
            .collect(),
    }
}

/// Build the canonical uniform-random workload for `config`, run it to
/// completion, and fingerprint the result.
pub fn run_fingerprint(config: &SystemConfig, load: InjectionProcess) -> Fingerprint {
    let mut sys = MultichipSystem::build(config).expect("system builds");
    let mut workload = UniformRandom::new(
        config.multichip.total_cores(),
        config.multichip.num_stacks,
        0.20,
        load,
        config.packet_flits,
        config.seed,
    );
    let outcome = sys.run(&mut workload).expect("run completes");
    system_fingerprint(&sys, outcome.avg_latency_cycles)
}

// ---------------------------------------------------------------------------
// Fast-forward differential harness
// ---------------------------------------------------------------------------

/// Disables fast-forward on any workload by reporting "cannot predict".
/// Generation is forwarded untouched, so the only difference between a
/// wrapped and an unwrapped run is whether the driver skips idle
/// cycles.
pub struct NoFastForward<W>(pub W);

impl<W: Workload> Workload for NoFastForward<W> {
    fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
        self.0.generate(now)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn shape(&self) -> (usize, usize) {
        self.0.shape()
    }
    fn next_event_at(&self, _now: u64) -> Option<u64> {
        None
    }
}

/// Full-fingerprint comparison of a fast-forwarded and a full-stepped
/// run of the same system + workload pair: stats, latency bits and
/// every energy category must match to the last bit.  `make_workload`
/// rebuilds the workload per run.
pub fn assert_ff_bit_identical(
    what: &str,
    cfg: &SystemConfig,
    make_workload: &dyn Fn() -> Box<dyn Workload>,
) {
    let run = |disable_ff: bool| {
        let mut cfg = cfg.clone();
        cfg.disable_fast_forward = disable_ff;
        let mut sys = MultichipSystem::build(&cfg).expect("system builds");
        let mut w = make_workload();
        sys.run(w.as_mut()).expect("run completes");
        sys
    };
    let fast = run(false);
    let full = run(true);
    assert!(
        full.network().fast_forwarded_cycles() == 0,
        "{what}: the full-stepping baseline must not skip"
    );
    assert!(
        fast.network().fast_forwarded_cycles() > 0,
        "{what}: fast-forward never engaged — the scenario no longer exercises it"
    );
    assert_eq!(
        fast.network().stats().packets_delivered(),
        full.network().stats().packets_delivered(),
        "{what}: delivered packets diverged"
    );
    assert_eq!(
        fast.network().stats().window_flits_delivered(),
        full.network().stats().window_flits_delivered(),
        "{what}: window flits diverged"
    );
    assert_eq!(
        fast.network().meter().total().picojoules().to_bits(),
        full.network().meter().total().picojoules().to_bits(),
        "{what}: energy totals must match to the last bit"
    );
    let breakdown = |sys: &MultichipSystem| -> Vec<u64> {
        sys.network()
            .meter()
            .breakdown()
            .entries
            .iter()
            .map(|(_, e)| e.picojoules().to_bits())
            .collect()
    };
    assert_eq!(breakdown(&fast), breakdown(&full), "{what}: breakdown diverged");
    // The per-stack controller statistics are part of the contract too:
    // skipped cycles replay their occupancy integrals in closed form
    // (MemoryController::idle_advance), so queue-depth and
    // bank-parallelism figures must not depend on whether the driver
    // stepped or jumped.
    assert_eq!(
        fast.memory_stats(),
        full.memory_stats(),
        "{what}: memory-controller statistics diverged"
    );
}
