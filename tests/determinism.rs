//! Determinism regression tests: the safety net under the active-set /
//! zero-allocation engine rework.
//!
//! The engine contract is *bit-identical* reproducibility: the same
//! `SystemConfig` and seed must produce the same `NetworkStats` and the
//! same energy meter totals — down to the last float bit — no matter
//! how often the simulation is repeated or how many experiments run
//! concurrently on other threads.  Any optimization that reorders
//! floating-point accumulation, iterates components in a
//! data-dependent order, or skips a cycle it should not, breaks these
//! tests immediately.

mod common;

use common::{assert_ff_bit_identical, quick, run_fingerprint, NoFastForward};

use wimnet::core::experiments::run_all;
use wimnet::core::sweeps::{run_pool, run_pool_batched, ScenarioGrid};
use wimnet::core::{Experiment, MultichipSystem, Scale, SystemConfig};
use wimnet::topology::Architecture;
use wimnet::traffic::{InjectionProcess, UniformRandom};

#[test]
fn repeated_runs_are_bit_identical_per_architecture() {
    for arch in Architecture::ALL {
        let cfg = quick(arch);
        let load = InjectionProcess::Bernoulli { rate: 0.004 };
        let a = run_fingerprint(&cfg, load);
        let b = run_fingerprint(&cfg, load);
        assert_eq!(a, b, "{arch}: identical seeds must be bit-identical");
        assert!(a.packets_delivered > 0, "{arch}: sanity — traffic flowed");
    }
}

#[test]
fn saturation_runs_are_bit_identical() {
    let cfg = quick(Architecture::Wireless);
    let a = run_fingerprint(&cfg, InjectionProcess::Saturation);
    let b = run_fingerprint(&cfg, InjectionProcess::Saturation);
    assert_eq!(a, b);
}

/// `run_all` executes experiments on one OS thread each; results must
/// not depend on how many run concurrently (1 vs 4 here) or on
/// scheduling order.
#[test]
fn thread_count_does_not_change_outcomes() {
    let cfg = quick(Architecture::Wireless);
    let exp = Experiment::uniform_random(&cfg, 0.004);

    let solo = run_all(std::slice::from_ref(&exp)).expect("solo run");
    let batch =
        run_all(&[exp.clone(), exp.clone(), exp.clone(), exp.clone()]).expect("batch run");

    let key = |o: &wimnet::core::RunOutcome| {
        (
            o.packets_delivered(),
            o.avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
            o.total_energy_nj().to_bits(),
        )
    };
    let reference = key(&solo[0]);
    for (i, o) in batch.iter().enumerate() {
        assert_eq!(key(o), reference, "outcome {i} diverged under concurrency");
    }
}

/// Fast-forward must never jump across the warmup/measurement
/// boundary: `begin_measurement` runs at the top of the iteration
/// where `cycle == warmup_cycles`, so a jump initiated in the
/// iteration that *ends* there must stop short.  (Regression test: an
/// empty trace makes the whole run fast-forwardable, and a warmup
/// that expires right as the links saturate used to skip the window
/// entirely, leaving zero window cycles and undiscarded warmup
/// energy.)
#[test]
fn fast_forward_stops_at_the_measurement_boundary() {
    for (arch, warmup) in [(Architecture::Wireless, 2), (Architecture::Substrate, 7)] {
        let mut cfg = quick(arch);
        cfg.warmup_cycles = warmup;
        let trace = wimnet::traffic::Trace::default();
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut replay = trace.replay();
        sys.run(&mut replay).unwrap();
        assert_eq!(
            sys.network().stats().window_cycles(),
            cfg.measure_cycles,
            "{arch}: measurement window must cover exactly the measured cycles"
        );
    }
}

/// The counter-based injection RNG makes Bernoulli generation a pure
/// function of `(seed, core, cycle)`, so the driver may fast-forward
/// over quiet low-load stretches.  The whole point of that soundness
/// argument (docs/sweeps.md) is THIS property: a fast-forwarded run is
/// bit-identical — stats, latency bits, every energy category — to one
/// that steps every cycle.
#[test]
fn bernoulli_fast_forward_is_bit_identical_to_full_stepping() {
    for arch in Architecture::ALL {
        let cfg = quick(arch);
        // Low enough that idle gaps dominate and fast-forward engages.
        let load = InjectionProcess::Bernoulli { rate: 0.0005 };
        let make = || {
            UniformRandom::new(
                cfg.multichip.total_cores(),
                cfg.multichip.num_stacks,
                0.20,
                load,
                cfg.packet_flits,
                cfg.seed,
            )
        };

        let mut fast = MultichipSystem::build(&cfg).expect("system builds");
        fast.run(&mut make()).expect("fast-forwarded run");

        let mut full = MultichipSystem::build(&cfg).expect("system builds");
        full.run(&mut NoFastForward(make())).expect("full-stepped run");

        assert_eq!(
            fast.network().stats().packets_delivered(),
            full.network().stats().packets_delivered(),
            "{arch}: delivered packets diverged"
        );
        assert_eq!(
            fast.network().stats().window_flits_delivered(),
            full.network().stats().window_flits_delivered(),
            "{arch}: window flits diverged"
        );
        assert_eq!(
            fast.network().meter().total().picojoules().to_bits(),
            full.network().meter().total().picojoules().to_bits(),
            "{arch}: energy totals must match to the last bit"
        );
        let fast_breakdown: Vec<u64> = fast
            .network()
            .meter()
            .breakdown()
            .entries
            .iter()
            .map(|(_, e)| e.picojoules().to_bits())
            .collect();
        let full_breakdown: Vec<u64> = full
            .network()
            .meter()
            .breakdown()
            .entries
            .iter()
            .map(|(_, e)| e.picojoules().to_bits())
            .collect();
        assert_eq!(fast_breakdown, full_breakdown, "{arch}: breakdown diverged");
        assert!(
            fast.network().stats().packets_delivered() > 0,
            "{arch}: sanity — the low-load run still carried traffic"
        );
    }
}

/// The tentpole contract for application traffic: `AppWorkload`'s
/// event-indexed phase/fire schedules make `next_event_at` exact, so a
/// fast-forwarded app run (quiet compute phases skipped in O(events))
/// is bit-identical to stepping every cycle — including the memory
/// read/reply traffic through the stacks.
#[test]
fn app_workload_fast_forward_is_bit_identical_to_full_stepping() {
    use wimnet::traffic::AppWorkload;
    for arch in [Architecture::Wireless, Architecture::Interposer] {
        let cfg = quick(arch);
        assert_ff_bit_identical(
            &format!("app/{arch}"),
            &cfg,
            &|| {
                Box::new(AppWorkload::new(
                    wimnet::traffic::profiles::blackscholes(),
                    cfg.multichip.num_chips,
                    cfg.multichip.cores_per_chip,
                    cfg.multichip.num_stacks,
                    cfg.seed,
                ))
            },
        );
    }
}

/// The tentpole contract for the serialized-channel MACs: both the
/// token and control-packet MACs now declare quiescence once drained,
/// and their `idle_step` replay keeps fast-forwarded shared-channel
/// runs bit-identical to full stepping — the paper's MAC-comparison
/// scenarios no longer pin the engine to per-cycle work.
#[test]
fn shared_channel_mac_fast_forward_is_bit_identical_to_full_stepping() {
    use wimnet::core::{MacKind, WirelessModel};
    for mac in [MacKind::Token, MacKind::ControlPacket] {
        let mut cfg = quick(Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac };
        // Low enough that the serialized channel fully drains between
        // packets and idle stretches dominate.
        let load = InjectionProcess::Bernoulli { rate: 0.0002 };
        let cores = cfg.multichip.total_cores();
        let stacks = cfg.multichip.num_stacks;
        let (flits, seed) = (cfg.packet_flits, cfg.seed);
        assert_ff_bit_identical(
            &format!("shared-channel/{mac:?}"),
            &cfg,
            &|| Box::new(UniformRandom::new(cores, stacks, 0.20, load, flits, seed)),
        );
    }
}

/// The memory-controller contract: on a read-heavy workload the
/// network drains while requests sit in the stack controllers' queues
/// and banks, and the driver jumps those DRAM service gaps (bounded by
/// `MemoryController::next_event_at`, replayed by `idle_advance`).  A
/// fast-forwarded run must be bit-identical to full stepping — stats,
/// latency bits, every energy category, and the per-stack controller
/// statistics — with fast-forward provably engaged.
#[test]
fn memory_read_fast_forward_is_bit_identical_to_full_stepping() {
    use wimnet::memory::SchedulerPolicy;
    use wimnet::traffic::AddressStreamSpec;
    for (arch, stream, scheduler) in [
        (
            Architecture::Wireless,
            AddressStreamSpec::Sequential,
            SchedulerPolicy::FrFcfs,
        ),
        (
            Architecture::Substrate,
            AddressStreamSpec::Uniform { region_blocks: 1 << 22 },
            SchedulerPolicy::Fcfs,
        ),
        (
            Architecture::Interposer,
            AddressStreamSpec::HotRow {
                region_blocks: 1 << 20,
                hot_blocks: 16,
                hot_fraction: 0.7,
            },
            SchedulerPolicy::FrFcfs,
        ),
    ] {
        let mut cfg = quick(arch);
        cfg.address_stream = stream;
        cfg.mem_controller.scheduler = scheduler;
        // Sparse enough that the network drains between reads, so the
        // memory-side gap (not the workload gap) is what gets skipped.
        let load = InjectionProcess::Bernoulli { rate: 0.0004 };
        let cores = cfg.multichip.total_cores();
        let stacks = cfg.multichip.num_stacks;
        let (flits, seed) = (cfg.packet_flits, cfg.seed);
        assert_ff_bit_identical(
            &format!("memory-read/{arch}"),
            &cfg,
            &|| {
                Box::new(
                    UniformRandom::new(cores, stacks, 0.9, load, flits, seed)
                        .with_memory_reads(1.0, 8),
                )
            },
        );
    }
}

/// The work-stealing pool decides only *where* an experiment runs,
/// never *what* it computes: every (threads, chunk) shape must produce
/// bit-identical outcomes in the same order.
#[test]
fn pool_shape_is_invisible_in_the_results() {
    let grid = ScenarioGrid::new("pool-shape")
        .scale(Scale::Quick)
        .architectures(&[Architecture::Wireless, Architecture::Interposer])
        .loads(&[0.001, 0.004]);
    let exps = grid.experiments();
    let key = |o: &wimnet::core::RunOutcome| {
        (
            o.packets_delivered(),
            o.avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
            o.total_energy_nj().to_bits(),
        )
    };
    let reference: Vec<_> = run_pool(&exps, 1, 1).expect("serial").iter().map(key).collect();
    for (threads, chunk) in [(2, 1), (4, 1), (4, 3), (8, 2), (16, 1)] {
        let got: Vec<_> = run_pool(&exps, threads, chunk)
            .expect("pooled")
            .iter()
            .map(key)
            .collect();
        assert_eq!(
            got, reference,
            "pool shape ({threads} threads, chunk {chunk}) changed outcomes"
        );
    }
}

/// Oversized chunks degrade gracefully: with `chunk > n` the worker
/// count clamps to `n.div_ceil(chunk) == 1` and one thread drains the
/// single steal — same outcomes, same order, no dead workers racing an
/// empty queue.  Checked for both the per-replica and the
/// replica-batched pool (where the whole list becomes one batch).
#[test]
fn oversized_chunks_collapse_to_one_worker_without_changing_outcomes() {
    let grid = ScenarioGrid::new("clamp")
        .scale(Scale::Quick)
        .architectures(&[Architecture::Wireless, Architecture::Substrate])
        .loads(&[0.001, 0.004]);
    let exps = grid.experiments();
    let reference = run_pool(&exps, 1, 1).expect("serial reference");
    let clamped = run_pool(&exps, 8, exps.len() + 5).expect("oversized chunk");
    assert_eq!(clamped, reference, "run_pool: chunk > n changed outcomes");
    let clamped_batched =
        run_pool_batched(&exps, 8, exps.len() + 5).expect("oversized batched chunk");
    assert_eq!(
        clamped_batched, reference,
        "run_pool_batched: chunk > n changed outcomes"
    );
}

/// The replica-batched pool's contract: scheduling whole `chunk`-wide
/// [`wimnet::core::ReplicaBatch`]es per steal is invisible in the
/// results — every (threads, chunk) shape produces outcomes
/// bit-identical to the per-replica `run_pool` reference, in the same
/// order.  Chunk boundaries decide batch membership, so the shapes
/// below cover one-lane batches, partial tail batches, and batches
/// spanning an architecture boundary.
#[test]
fn batched_pool_shape_is_invisible_in_the_results() {
    let grid = ScenarioGrid::new("batched-pool-shape")
        .scale(Scale::Quick)
        .architectures(&[Architecture::Wireless, Architecture::Interposer])
        .loads(&[0.001, 0.004, 0.016]);
    let exps = grid.experiments();
    let reference = run_pool(&exps, 1, 1).expect("per-replica reference");
    for (threads, chunk) in [(1, 1), (1, 3), (2, 2), (4, 3), (8, 4), (2, 6)] {
        let got = run_pool_batched(&exps, threads, chunk).expect("batched pool");
        assert_eq!(
            got, reference,
            "batched pool shape ({threads} threads, chunk {chunk}) changed outcomes"
        );
    }
}

/// The acceptance criterion for O(1)-per-skipped-cycle accounting,
/// asserted on the meter's own work counters rather than wall clock:
/// with an empty trace the whole run is fast-forwardable, so growing
/// the measurement window by 16× must leave the number of meter
/// *operations* unchanged (each jump lands a constant handful of
/// `add_repeated`s) while the number of per-cycle charge *quanta*
/// grows with the window.  Covered for the always-on wireless medium
/// and both serialized-channel MACs, whose idle closed forms emit
/// repeated charges per period rather than per cycle.
#[test]
fn fast_forwarded_idle_accounting_is_o1_in_skipped_cycles() {
    use wimnet::core::{MacKind, WirelessModel};
    let scenarios: Vec<(&str, SystemConfig)> = vec![
        ("substrate", quick(Architecture::Substrate)),
        ("wireless/parallel", quick(Architecture::Wireless)),
        (
            "wireless/token",
            {
                let mut c = quick(Architecture::Wireless);
                c.wireless = WirelessModel::SharedChannel { mac: MacKind::Token };
                c
            },
        ),
        (
            "wireless/control-packet",
            {
                let mut c = quick(Architecture::Wireless);
                c.wireless = WirelessModel::SharedChannel { mac: MacKind::ControlPacket };
                c
            },
        ),
    ];
    for (what, base) in scenarios {
        let meter_work = |measure_cycles: u64| -> (u64, u64, u64) {
            let mut cfg = base.clone();
            cfg.measure_cycles = measure_cycles;
            let mut sys = MultichipSystem::build(&cfg).expect("system builds");
            let trace = wimnet::traffic::Trace::default();
            let mut replay = trace.replay();
            sys.run(&mut replay).expect("idle run completes");
            let skipped = sys.network().fast_forwarded_cycles();
            (sys.network().meter().ops(), sys.network().meter().charges(), skipped)
        };
        let (ops_small, charges_small, skipped_small) = meter_work(10_000);
        let (ops_big, charges_big, skipped_big) = meter_work(160_000);
        assert!(skipped_big > skipped_small, "{what}: bigger window must skip more");
        assert_eq!(
            ops_small, ops_big,
            "{what}: meter operations must not scale with the skipped-cycle count"
        );
        assert!(
            charges_big >= charges_small + (160_000 - 10_000),
            "{what}: charge quanta must keep scaling with the window \
             ({charges_small} -> {charges_big})"
        );
        assert!(
            charges_big > ops_big,
            "{what}: the closed forms must actually batch (saved {} adds)",
            charges_big - ops_big
        );
    }
}

/// Nonzero DRAM background power rides the same contract: the per-cycle
/// quantum charged by the stepping driver and the repeated charge
/// batched by `MemoryController::idle_advance` must agree to the last
/// bit, and the `dram_background` category must actually accrue.
#[test]
fn background_power_fast_forward_is_bit_identical_to_full_stepping() {
    use wimnet::energy::{EnergyCategory, Power};
    use wimnet::traffic::AddressStreamSpec;
    let mut cfg = quick(Architecture::Wireless);
    cfg.address_stream = AddressStreamSpec::Sequential;
    cfg.stack.background_power = Power::from_mw(75.0);
    let load = InjectionProcess::Bernoulli { rate: 0.0004 };
    let cores = cfg.multichip.total_cores();
    let stacks = cfg.multichip.num_stacks;
    let (flits, seed) = (cfg.packet_flits, cfg.seed);
    assert_ff_bit_identical(
        "memory-read/background-power",
        &cfg,
        &|| {
            Box::new(
                UniformRandom::new(cores, stacks, 0.9, load, flits, seed)
                    .with_memory_reads(1.0, 8),
            )
        },
    );
    let mut sys = MultichipSystem::build(&cfg).unwrap();
    let mut w = UniformRandom::new(cores, stacks, 0.9, load, flits, seed)
        .with_memory_reads(1.0, 8);
    sys.run(&mut w).unwrap();
    let background = sys
        .network()
        .meter()
        .breakdown()
        .category(EnergyCategory::DramBackground);
    assert!(
        background > wimnet::energy::Energy::ZERO,
        "background power configured but dram_background never accrued"
    );
}

/// The observability tentpole's contract (`docs/observability.md`):
/// attaching telemetry — per-component counters, the cycle-bucketed
/// time series, even full trace recording — must not move a single
/// outcome bit.  Covered across all three architectures at a load
/// where fast-forward provably engages (so the ff-aware sampling path
/// runs, not just per-cycle bucketing) and both serialized-channel
/// MACs (whose turn logging rides the hottest decision paths).  The
/// observed run's `RunOutcome` must equal the unobserved run's in
/// every field except the telemetry payload itself, with latency and
/// energy additionally compared at the bit level.
#[test]
fn telemetry_has_zero_observer_effect() {
    use wimnet::core::{MacKind, TelemetryConfig, WirelessModel};
    let mut scenarios: Vec<(String, SystemConfig, f64)> = Architecture::ALL
        .iter()
        .map(|&arch| (format!("{arch}"), quick(arch), 0.0005))
        .collect();
    for mac in [MacKind::Token, MacKind::ControlPacket] {
        let mut cfg = quick(Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac };
        scenarios.push((format!("shared-channel/{mac:?}"), cfg, 0.0002));
    }
    for (what, cfg, load) in scenarios {
        let plain = Experiment::uniform_random(&cfg, load)
            .run()
            .expect("unobserved run");
        assert!(
            plain.fast_forwarded_cycles > 0,
            "{what}: the scenario must engage fast-forward"
        );
        assert!(plain.packets_delivered() > 0, "{what}: sanity — traffic flowed");
        assert!(plain.telemetry.is_none(), "{what}: telemetry defaults to off");

        let mut observed_cfg = cfg.clone();
        observed_cfg.telemetry = TelemetryConfig::tracing();
        let mut observed = Experiment::uniform_random(&observed_cfg, load)
            .run()
            .expect("observed run");
        let summary = observed
            .telemetry
            .take()
            .unwrap_or_else(|| panic!("{what}: telemetry was enabled"));
        assert!(summary.cycles > 0, "{what}: summary covers the run");
        assert!(!summary.links.is_empty(), "{what}: per-link counters present");

        assert_eq!(
            observed.avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
            plain.avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
            "{what}: latency bits moved under observation"
        );
        assert_eq!(
            observed.total_energy_nj().to_bits(),
            plain.total_energy_nj().to_bits(),
            "{what}: energy bits moved under observation"
        );
        // Everything else — counts, percentiles, memory and energy
        // breakdowns — via the full structural comparison.
        assert_eq!(observed, plain, "{what}: telemetry changed the outcome");
    }
}

/// Idle fast-forward must not change what an idle system reports:
/// leakage accrues cycle-exactly even when the cycles are skipped.
#[test]
fn idle_fast_forward_keeps_cycle_exact_leakage() {
    let cfg = quick(Architecture::Substrate);
    let mut a = MultichipSystem::build(&cfg).unwrap();
    let mut b = MultichipSystem::build(&cfg).unwrap();
    // One long idle stretch vs many short ones: same cycle count, same
    // energy bits.
    a.idle(10_000);
    for _ in 0..100 {
        b.idle(100);
    }
    assert_eq!(a.network().now(), b.network().now());
    assert_eq!(
        a.network().meter().total().picojoules().to_bits(),
        b.network().meter().total().picojoules().to_bits(),
        "leakage must be bit-identical regardless of fast-forward chunking"
    );
}
