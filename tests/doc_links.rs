//! Intra-repo documentation link check: every relative markdown link in
//! `README.md` and `docs/*.md` must resolve to a file that exists.  A
//! renamed doc or a typo'd cross-link fails here (and in the CI "Docs
//! link check" step) instead of rotting silently.

use std::path::{Path, PathBuf};

/// Markdown `[text](target)` targets in `text`, in order.  A tiny
/// hand-rolled scan (no regex dependency): find `](`, take to the
/// matching `)`.  Fenced code blocks are skipped so example snippets
/// can show link syntax without being checked.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            rest = &rest[i + 2..];
            let Some(j) = rest.find(')') else { break };
            out.push(rest[..j].to_string());
            rest = &rest[j + 1..];
        }
    }
    out
}

/// `true` for targets this check is responsible for: relative paths
/// into the repo (external URLs and pure anchors are out of scope).
fn is_intra_repo(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty())
}

fn check_file(repo: &Path, doc: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("{} must be readable: {e}", doc.display()));
    let base = doc.parent().expect("doc files live in a directory");
    let mut broken = Vec::new();
    for target in link_targets(&text) {
        if !is_intra_repo(&target) {
            continue;
        }
        // Strip any `#anchor` suffix; the file part must exist.
        let file_part = target.split('#').next().expect("split yields at least one");
        if file_part.is_empty() {
            continue; // same-file anchor
        }
        let resolved = base.join(file_part);
        if !resolved.exists() {
            broken.push(format!(
                "{}: link `{}` -> missing {}",
                doc.strip_prefix(repo).unwrap_or(doc).display(),
                target,
                resolved.display()
            ));
        }
    }
    broken
}

#[test]
fn readme_and_docs_links_resolve() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![repo.join("README.md")];
    let docs_dir = repo.join("docs");
    for entry in std::fs::read_dir(&docs_dir).expect("docs/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    assert!(
        docs.len() >= 7,
        "README + the six docs (engine, fast_forward, sweeps, memory, \
         checkpoint, observability) expected, got {docs:?}"
    );
    let broken: Vec<String> =
        docs.iter().flat_map(|d| check_file(&repo, d)).collect();
    assert!(broken.is_empty(), "broken intra-repo links:\n{}", broken.join("\n"));
}

#[test]
fn link_scanner_sees_targets_and_skips_fences() {
    let text = "see [engine](docs/engine.md) and [web](https://x.y)\n```\n[no](skip.md)\n```\n[anchor](#top)";
    let targets = link_targets(text);
    assert_eq!(targets, vec!["docs/engine.md", "https://x.y", "#top"]);
    assert!(is_intra_repo("docs/engine.md"));
    assert!(!is_intra_repo("https://x.y"));
    assert!(!is_intra_repo("#top"));
}
