//! Cross-crate integration: the full pipeline (topology → routing →
//! engine → wireless → metrics) for every architecture and wireless
//! model.

use wimnet::core::{Experiment, MacKind, SystemConfig, WirelessModel};
use wimnet::topology::Architecture;

fn quick(arch: Architecture) -> SystemConfig {
    SystemConfig::xcym(4, 4, arch).quick_test_profile()
}

#[test]
fn every_architecture_delivers_uniform_traffic() {
    for arch in Architecture::ALL {
        let cfg = quick(arch);
        // A load even the substrate's 15 Gbps serial chains can carry.
        let outcome = Experiment::uniform_random(&cfg, 0.001)
            .run()
            .unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert!(
            outcome.packets_delivered() > 20,
            "{arch} delivered too little: {}",
            outcome.packets_delivered()
        );
        assert!(outcome.avg_latency_cycles.unwrap() > 0.0);
        assert!(outcome.packet_energy_nj() > 0.0);
    }
}

#[test]
fn energy_conservation_across_the_stack() {
    for arch in Architecture::ALL {
        let cfg = quick(arch);
        let outcome = Experiment::uniform_random(&cfg, 0.003).run().unwrap();
        let sum: f64 = outcome
            .energy
            .entries
            .iter()
            .map(|(_, e)| e.joules())
            .sum();
        let total = outcome.energy.total.joules();
        assert!(
            (sum - total).abs() <= total * 1e-9 + 1e-15,
            "{arch}: breakdown {sum} != total {total}"
        );
    }
}

#[test]
fn wireless_energy_categories_only_appear_on_wireless_architecture() {
    use wimnet::energy::EnergyCategory;
    let wired = Experiment::uniform_random(&quick(Architecture::Substrate), 0.002)
        .run()
        .unwrap();
    assert_eq!(
        wired.energy.category(EnergyCategory::WirelessTx).joules(),
        0.0
    );
    let wireless = Experiment::uniform_random(&quick(Architecture::Wireless), 0.002)
        .run()
        .unwrap();
    assert!(wireless.energy.category(EnergyCategory::WirelessTx).joules() > 0.0);
    assert!(wireless.energy.category(EnergyCategory::WirelessRx).joules() > 0.0);
}

#[test]
fn serialized_macs_run_end_to_end_at_low_load() {
    for mac in [MacKind::ControlPacket, MacKind::Token] {
        let mut cfg = quick(Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac };
        // Loads the 16 Gbps serialized channel can sustain.
        let outcome = Experiment::uniform_random(&cfg, 0.0005)
            .run()
            .unwrap_or_else(|e| panic!("{mac:?}: {e}"));
        assert!(outcome.packets_delivered() > 0, "{mac:?} delivered nothing");
    }
}

#[test]
fn identical_configs_and_seeds_reproduce_identical_outcomes() {
    let cfg = quick(Architecture::Wireless);
    let a = Experiment::uniform_random(&cfg, 0.004).run().unwrap();
    let b = Experiment::uniform_random(&cfg, 0.004).run().unwrap();
    assert_eq!(a.packets_delivered(), b.packets_delivered());
    assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
    assert_eq!(a.window_packets, b.window_packets);
    assert!((a.total_energy_nj() - b.total_energy_nj()).abs() < 1e-9);
}

#[test]
fn different_seeds_change_the_sample_but_not_the_physics() {
    let mut cfg_a = quick(Architecture::Interposer);
    cfg_a.seed = 1;
    let mut cfg_b = quick(Architecture::Interposer);
    cfg_b.seed = 2;
    let a = Experiment::uniform_random(&cfg_a, 0.004).run().unwrap();
    let b = Experiment::uniform_random(&cfg_b, 0.004).run().unwrap();
    // Different random workloads...
    assert_ne!(a.window_packets, b.window_packets);
    // ...but the same physical regime (within quick-scale noise).
    let rel = (a.bandwidth_gbps_per_core - b.bandwidth_gbps_per_core).abs()
        / a.bandwidth_gbps_per_core;
    assert!(rel < 0.25, "seed changed the regime: {a:?} vs {b:?}");
}

#[test]
fn paper_orderings_hold_end_to_end() {
    // The paper's headline (§IV.B): wireless beats interposer beats
    // substrate on energy; wireless has the lowest latency.  The
    // latency comparison needs a window longer than the quick profile:
    // the substrate's serial chains are past saturation even at this
    // load, and a short window censors the slow cross-chip packets
    // whose queueing makes that visible (survivor bias).
    let mut energy = Vec::new();
    let mut latency = Vec::new();
    for arch in Architecture::ALL {
        let mut cfg = quick(arch);
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 3_000;
        let o = Experiment::uniform_random(&cfg, 0.001).run().unwrap();
        energy.push((arch, o.packet_energy_nj()));
        latency.push((arch, o.latency_cycles()));
    }
    let get = |v: &Vec<(Architecture, f64)>, a: Architecture| {
        v.iter().find(|(x, _)| *x == a).unwrap().1
    };
    assert!(
        get(&energy, Architecture::Wireless) < get(&energy, Architecture::Interposer)
    );
    assert!(
        get(&energy, Architecture::Interposer) < get(&energy, Architecture::Substrate)
    );
    assert!(
        get(&latency, Architecture::Wireless) < get(&latency, Architecture::Substrate)
    );
}
