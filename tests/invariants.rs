//! Engine invariants under stress: wormhole integrity, flit
//! conservation and deadlock freedom, exercised through the whole stack.

use wimnet::noc::{Network, NocConfig, PacketDesc};
use wimnet::routing::{Routes, RoutingPolicy};
use wimnet::topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet::wireless::{ChannelConfig, ControlPacketMac};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn stress(arch: Architecture, policy: RoutingPolicy, packets: usize, seed: u64) {
    let layout = MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
    let routes = Routes::build(layout.graph(), policy).unwrap();
    let mut net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
    if arch == Architecture::Wireless {
        net.attach_medium(Box::new(ControlPacketMac::new(ChannelConfig::paper(
            net.radio_count(),
        ))));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes: Vec<_> = layout
        .core_nodes()
        .iter()
        .chain(layout.memory_nodes())
        .copied()
        .collect();

    let mut injected_flits = 0u64;
    let mut injected_packets = 0u64;
    // Burst-inject random traffic over the first 2 000 cycles.
    for cycle in 0..2_000u64 {
        if injected_packets < packets as u64 && cycle % 3 == 0 {
            let src = nodes[rng.gen_range(0..nodes.len())];
            let mut dst = nodes[rng.gen_range(0..nodes.len())];
            if dst == src {
                dst = nodes[(rng.gen_range(0..nodes.len()) + 1) % nodes.len()];
            }
            if dst != src {
                let flits = *[1u32, 4, 16, 64].get(rng.gen_range(0..4)).unwrap();
                net.inject(PacketDesc::new(src, dst, flits, cycle));
                injected_packets += 1;
                injected_flits += u64::from(flits);
            }
        }
        net.step();
    }
    // Drain.
    for _ in 0..150_000u64 {
        if net.flits_in_flight() == 0 && net.source_backlog() == 0 {
            break;
        }
        net.step();
        assert!(
            !net.is_stalled(30_000),
            "{arch}/{policy}: stalled with {} in flight",
            net.flits_in_flight()
        );
    }
    // Conservation: every injected packet and flit arrives exactly once.
    assert_eq!(net.stats().packets_delivered(), injected_packets, "{arch}/{policy}");
    assert_eq!(net.stats().flits_delivered(), injected_flits, "{arch}/{policy}");
    assert_eq!(net.flits_in_flight(), 0);
    assert!(net.meter().verify_conservation(1e-9));
}

#[test]
fn updown_conserves_flits_on_substrate() {
    stress(Architecture::Substrate, RoutingPolicy::up_down(), 300, 11);
}

#[test]
fn updown_conserves_flits_on_interposer() {
    stress(Architecture::Interposer, RoutingPolicy::up_down(), 300, 12);
}

#[test]
fn updown_conserves_flits_on_wireless_with_serialized_mac() {
    stress(Architecture::Wireless, RoutingPolicy::up_down(), 150, 13);
}

#[test]
fn tree_routing_conserves_flits_everywhere() {
    for (i, arch) in Architecture::ALL.iter().enumerate() {
        stress(*arch, RoutingPolicy::tree(), 120, 20 + i as u64);
    }
}

#[test]
fn mixed_packet_sizes_deliver_in_order_per_packet() {
    // The Reassembler inside the network panics on out-of-order or
    // duplicated flits, so a clean run is itself the assertion; this
    // test exists to pin that behaviour with single-flit packets mixed
    // into long ones.
    stress(Architecture::Interposer, RoutingPolicy::up_down(), 400, 31);
}
