//! Pin the reproduction to the paper's §IV parameters: if a refactor
//! drifts any headline constant, this file fails.

use wimnet::core::SystemConfig;
use wimnet::energy::EnergyModel;
use wimnet::memory::WideIoSpec;
use wimnet::topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet::wireless::{ChannelConfig, TransceiverSpec, ZigzagAntenna};

#[test]
fn simulation_parameters_match_section_iv() {
    let cfg = SystemConfig::xcym(4, 4, Architecture::Wireless);
    assert_eq!(cfg.vcs, 8, "8 VCs per port");
    assert_eq!(cfg.buf_depth, 16, "16-flit buffers");
    assert_eq!(cfg.flit_bits, 32, "32-bit flits");
    assert_eq!(cfg.packet_flits, 64, "64-flit packets");
    assert_eq!(cfg.warmup_cycles, 1_000, "1,000 warmup iterations");
    assert_eq!(
        cfg.warmup_cycles + cfg.measure_cycles,
        10_000,
        "10,000 total iterations"
    );
}

#[test]
fn technology_constants_match_the_citations() {
    let e = EnergyModel::paper_65nm();
    assert!((e.clock.gigahertz() - 2.5).abs() < 1e-12, "2.5 GHz clock");
    assert_eq!(e.supply_voltage, 1.0, "1 V supply");
    assert!(
        (e.wireless_tx_pj_per_bit + e.wireless_rx_pj_per_bit - 2.3).abs() < 1e-12,
        "2.3 pJ/bit transceiver"
    );
    assert_eq!(e.serial_io_pj_per_bit, 5.0, "5 pJ/bit serial I/O (ref [8])");
    assert_eq!(e.wide_io_pj_per_bit, 6.5, "6.5 pJ/bit wide I/O (ref [19])");
}

#[test]
fn transceiver_and_antenna_match_section_iii() {
    let t = TransceiverSpec::paper();
    assert_eq!(t.data_rate_gbps, 16.0, "16 Gbps OOK");
    assert_eq!(t.area_mm2, 0.3, "0.3 mm^2 per transceiver");
    assert!(t.ber <= 1e-15, "BER < 1e-15");
    let a = ZigzagAntenna::paper();
    assert_eq!(a.frequency_ghz, 60.0, "60 GHz band");
    assert_eq!(a.bandwidth_ghz, 16.0, "16 GHz antenna bandwidth");
    assert_eq!(a.gain_dbi, 0.0, "non-directional");
}

#[test]
fn wide_io_matches_ref_19() {
    let w = WideIoSpec::paper();
    assert_eq!(w.width_bits, 128, "128-bit channel");
    assert!((w.clock.gigahertz() - 1.0).abs() < 1e-12, "1 GHz");
    assert!((w.bandwidth_gbps() - 128.0).abs() < 1e-9, "128 Gbps per stack");
    assert_eq!(w.ubump_pitch_um, 50.0, "50 um u-bump pitch");
    assert_eq!(w.die_edge_mm, 10.0, "10 mm die edge");
}

#[test]
fn channel_serialisation_matches_the_flit_clock_maths() {
    // 32-bit flit / 16 Gbps = 2 ns = 5 cycles at 2.5 GHz.
    assert_eq!(ChannelConfig::paper(8).cycles_per_flit(), 5);
}

#[test]
fn paper_systems_have_the_right_shapes() {
    // 4C4M: four 16-core chips (10 mm x 10 mm at 2.5 mm tile pitch).
    let l = MultichipLayout::build(&MultichipConfig::xcym(4, 4, Architecture::Wireless))
        .unwrap();
    assert_eq!(l.total_cores(), 64);
    assert_eq!(l.chip_spec().cores(), 16);
    assert!((l.chip_spec().die_width_mm() - 10.0).abs() < 1e-9);
    assert_eq!(l.wireless_interfaces().len(), 8, "4 chip WIs + 4 stack WIs");

    // 8C4M keeps 64 cores and uses 1 WI per chip.
    let l = MultichipLayout::build(&MultichipConfig::xcym(8, 4, Architecture::Wireless))
        .unwrap();
    assert_eq!(l.total_cores(), 64);
    assert_eq!(l.wireless_interfaces().len(), 12, "8 chip WIs + 4 stack WIs");

    // 1C4M: one 64-core chip with 1 WI / 16 cores.
    let l = MultichipLayout::build(&MultichipConfig::xcym(1, 4, Architecture::Wireless))
        .unwrap();
    assert_eq!(l.wireless_interfaces().len(), 8, "4 chip WIs + 4 stack WIs");
}

#[test]
fn memory_stacks_match_section_iv() {
    let cfg = MultichipConfig::xcym(4, 4, Architecture::Substrate);
    assert_eq!(cfg.memory.layers, 4, "4-layer stacked DRAM");
    assert_eq!(cfg.memory.channels, 4, "four channels per stack");
}
