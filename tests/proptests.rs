//! Property-based tests across the crate boundaries: random
//! configurations and workload parameters must never violate the
//! system's invariants.

mod common;

use proptest::prelude::*;

use common::{arch_strategy, quick};

use wimnet::core::{Experiment, ReplicaBatch, RunOutcome};
use wimnet::routing::{deadlock, Routes, RoutingPolicy};
use wimnet::topology::{Architecture, MultichipConfig, MultichipLayout};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// Every buildable configuration yields a connected topology whose
    /// forwarding tables are complete, and the deadlock-free policies
    /// really are deadlock-free.
    #[test]
    fn topologies_route_completely_and_safely(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        stacks in prop_oneof![Just(2usize), Just(4), Just(6)],
        arch in arch_strategy(),
        tree in any::<bool>(),
    ) {
        let cfg = MultichipConfig::xcym(chips, stacks, arch);
        let layout = MultichipLayout::build(&cfg).unwrap();
        prop_assert!(layout.graph().is_connected());
        let policy = if tree { RoutingPolicy::tree() } else { RoutingPolicy::up_down() };
        let routes = Routes::build(layout.graph(), policy).unwrap();
        // Completeness: every ordered pair has a walkable path.
        let g = layout.graph();
        for s in g.node_ids().step_by(7) {
            for d in g.node_ids().step_by(5) {
                if s != d {
                    let path = routes.path(s, d).unwrap();
                    prop_assert_eq!(*path.first().unwrap(), s);
                    prop_assert_eq!(*path.last().unwrap(), d);
                }
            }
        }
        prop_assert!(deadlock::find_cycle(g, &routes).is_none());
    }

    /// Home-stack assignments always reference a real stack and cores on
    /// the same chip share a home.
    #[test]
    fn home_stacks_are_well_formed(
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        stacks in prop_oneof![Just(2usize), Just(4)],
        arch in arch_strategy(),
    ) {
        let cfg = MultichipConfig::xcym(chips, stacks, arch);
        let layout = MultichipLayout::build(&cfg).unwrap();
        let homes = layout.home_stacks();
        prop_assert_eq!(homes.len(), layout.total_cores());
        prop_assert!(homes.iter().all(|&s| s < stacks));
        let per_chip = layout.total_cores() / chips;
        for chip in 0..chips {
            let first = homes[chip * per_chip];
            prop_assert!(homes[chip * per_chip..(chip + 1) * per_chip]
                .iter()
                .all(|&h| h == first));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, ..ProptestConfig::default()
    })]

    /// Short random simulations never violate conservation: delivery
    /// counts stay bounded by injections, energy categories sum to the
    /// total, and latency is at least the serialization floor.
    #[test]
    fn random_runs_respect_conservation(
        arch in arch_strategy(),
        seed in 0u64..1_000,
        load in 0.0005f64..0.004,
    ) {
        let mut cfg = quick(arch);
        cfg.seed = seed;
        let outcome = Experiment::uniform_random(&cfg, load).run().unwrap();
        prop_assert!(outcome.packets_delivered() > 0);
        let sum: f64 = outcome.energy.entries.iter().map(|(_, e)| e.joules()).sum();
        prop_assert!((sum - outcome.energy.total.joules()).abs()
            <= outcome.energy.total.joules() * 1e-9 + 1e-15);
        // A 64-flit packet cannot beat its own serialization.
        if let Some(lat) = outcome.avg_latency_cycles {
            prop_assert!(lat >= 64.0, "latency {lat} below serialization floor");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, ..ProptestConfig::default()
    })]

    /// The replica-batch contract: a batch of N random grid points —
    /// mixed architectures, loads, seeds, and idle fast-forward on or
    /// off per lane — produces [`RunOutcome`]s **bit-identical** to N
    /// independent `Experiment::run` calls.  `RunOutcome`'s `PartialEq`
    /// covers the full fingerprint (packet/flit counts, latency floats,
    /// every energy category) *and* the per-stack memory-controller
    /// statistics, so any divergence between the batch's fast lockstep
    /// path and the solo reference loop fails here.
    #[test]
    fn replica_batches_match_independent_runs(
        lanes in prop::collection::vec(
            (
                (0usize..3, 0u64..1_000),
                (0.0005f64..0.004, any::<bool>(), any::<bool>()),
            ),
            1..4,
        ),
    ) {
        let experiments: Vec<Experiment> = lanes
            .iter()
            .map(|&((arch_idx, seed), (load, disable_ff, reads))| {
                let arch = [
                    Architecture::Substrate,
                    Architecture::Interposer,
                    Architecture::Wireless,
                ][arch_idx];
                let mut cfg = quick(arch);
                cfg.seed = seed;
                cfg.disable_fast_forward = disable_ff;
                if reads {
                    // Closed-loop read traffic so the batch also covers
                    // the stack controllers and reply scheduling.
                    Experiment::memory_reads(&cfg, load, 0.5)
                } else {
                    Experiment::uniform_random(&cfg, load)
                }
            })
            .collect();
        let sequential: Vec<RunOutcome> = experiments
            .iter()
            .map(|e| e.run().unwrap())
            .collect();
        let batched = ReplicaBatch::run_all(&experiments).unwrap();
        prop_assert_eq!(batched, sequential);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32, ..ProptestConfig::default()
    })]

    /// The mergeability contract behind sharded observation
    /// (`docs/observability.md`): recording a latency stream into
    /// per-shard [`wimnet::telemetry::LogHistogram`]s and merging them
    /// is *exactly* the histogram of the whole stream — structural
    /// equality plus every percentile read-out, for any shard count
    /// and any interleaving (round-robin here; merge is counter
    /// addition, so assignment order cannot matter).
    #[test]
    fn merged_shard_histograms_equal_the_single_run(
        samples in prop::collection::vec(0u64..200_000, 1..300),
        shards in 1usize..6,
    ) {
        use wimnet::telemetry::LogHistogram;
        let mut whole = LogHistogram::default();
        for &s in &samples {
            whole.record(s);
        }
        let mut parts = vec![LogHistogram::default(); shards];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s);
        }
        let mut merged = LogHistogram::default();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &whole, "merged shards diverge structurally");
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in [0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                merged.percentile(q),
                whole.percentile(q),
                "p{q} diverged between merged shards and the single run"
            );
        }
    }
}
