//! Serialisation round trips for the result and configuration types the
//! harness writes to disk.
//!
//! Floating-point fields are compared with a relative tolerance: the
//! JSON layer is not guaranteed bit-exact for every f64, and the
//! archives only need analysable precision.

mod common;

use proptest::prelude::*;

use common::gnarly_f64;

use wimnet::core::catalog;
use wimnet::core::experiments::Scale;
use wimnet::core::system::MacKind;
use wimnet::core::{
    Experiment, MultichipSystem, RunOutcome, ScenarioPoint, Snapshot, SystemConfig, WirelessModel,
};
use wimnet::energy::{Energy, EnergyBreakdown, EnergyCategory};
use wimnet::memory::{MemoryStackStats, SchedulerPolicy};
use wimnet::topology::Architecture;
use wimnet::traffic::{AddressStreamSpec, InjectionProcess};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= a.abs().max(b.abs()) * 1e-9 + 1e-15
}

#[test]
fn run_outcome_round_trips_through_json() {
    let cfg = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
    let outcome = Experiment::uniform_random(&cfg, 0.002).run().unwrap();
    let json = serde_json::to_string_pretty(&outcome).unwrap();
    let back: RunOutcome = serde_json::from_str(&json).unwrap();

    assert_eq!(back.label, outcome.label);
    assert_eq!(back.workload, outcome.workload);
    assert_eq!(back.cores, outcome.cores);
    assert_eq!(back.window_packets, outcome.window_packets);
    assert_eq!(back.total_packets, outcome.total_packets);
    assert_eq!(back.max_latency_cycles, outcome.max_latency_cycles);
    assert_eq!(back.p99_latency_cycles, outcome.p99_latency_cycles);
    assert!(close(
        back.bandwidth_gbps_per_core,
        outcome.bandwidth_gbps_per_core
    ));
    assert!(close(back.packet_energy_nj(), outcome.packet_energy_nj()));
    assert!(close(back.latency_cycles(), outcome.latency_cycles()));
    assert!(close(
        back.energy.total.joules(),
        outcome.energy.total.joules()
    ));
    assert_eq!(back.energy.entries.len(), outcome.energy.entries.len());

    // The JSON is self-describing enough to grep in result archives.
    assert!(json.contains("bandwidth_gbps_per_core"));
    assert!(json.contains("4C4M (Wireless)"));
}

#[test]
fn system_config_round_trips_through_json() {
    let cfg = SystemConfig::xcym(8, 4, Architecture::Interposer);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    // Routing policy is deliberately skipped (not serialisable), so the
    // round trip resets it to the default; everything else must match.
    assert_eq!(back.multichip, cfg.multichip);
    assert_eq!(back.packet_flits, cfg.packet_flits);
    assert_eq!(back.wireless, cfg.wireless);
    assert_eq!(back.warmup_cycles, cfg.warmup_cycles);
    assert_eq!(back.vcs, cfg.vcs);
    assert_eq!(back.buf_depth, cfg.buf_depth);
    assert!(close(
        back.energy.wire_pj_per_bit_per_mm,
        cfg.energy.wire_pj_per_bit_per_mm
    ));
    assert!(close(
        back.energy.switch_static_base.watts(),
        cfg.energy.switch_static_base.watts()
    ));
    // A config deserialised from an archive must still build and run.
    let outcome = Experiment::uniform_random(&back.quick_test_profile(), 0.001)
        .run()
        .unwrap();
    assert!(outcome.packets_delivered() > 0);
}

#[test]
fn figure_rows_serialize_for_the_harness() {
    use wimnet::core::experiments::{fig2, Scale};
    let rows = fig2(Scale::Quick).unwrap();
    let json = serde_json::to_string(&rows).unwrap();
    assert!(json.contains("Substrate"));
    let back: Vec<wimnet::core::experiments::Fig2Row> =
        serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), rows.len());
}

// ---------------------------------------------------------------------------
// Property tests: the catalog payload types (`ScenarioPoint`,
// `RunOutcome`) must survive JSON **bit-exactly** for arbitrary values,
// because the result catalog's resume/dedupe guarantees
// (`docs/sweeps.md`) are stated in terms of byte-identical entries.
// ---------------------------------------------------------------------------

fn arch_from(idx: usize) -> Architecture {
    match idx % 3 {
        0 => Architecture::Wireless,
        1 => Architecture::Interposer,
        _ => Architecture::Substrate,
    }
}

fn wireless_from(idx: usize, flits_raw: u32, conc: u32) -> WirelessModel {
    match idx % 5 {
        0 => WirelessModel::default(),
        1 => WirelessModel::PointToPoint {
            flits_per_cycle: f64::from(flits_raw) / 64.0,
            max_concurrent: 1 + conc % 16,
        },
        2 => WirelessModel::ParallelLinks {
            flits_per_cycle: f64::from(flits_raw) / 64.0,
        },
        3 => WirelessModel::SharedChannel { mac: MacKind::Token },
        _ => WirelessModel::SharedChannel {
            mac: MacKind::ControlPacket,
        },
    }
}

fn stream_from(idx: usize, a: u64, b: u64, frac_raw: u32) -> AddressStreamSpec {
    let region = 1 + a % 1_000_000;
    match idx % 4 {
        0 => AddressStreamSpec::Sequential,
        1 => AddressStreamSpec::Strided {
            stride_blocks: 1 + b % 4096,
        },
        2 => AddressStreamSpec::Uniform {
            region_blocks: region,
        },
        _ => AddressStreamSpec::HotRow {
            region_blocks: region,
            hot_blocks: 1 + b % region,
            hot_fraction: f64::from(frac_raw) / f64::from(u32::MAX),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random [`ScenarioPoint`]s over all nine axes round-trip through
    /// JSON to equal values, and — the property the catalog actually
    /// leans on — the round trip preserves the content fingerprint and
    /// the serialized bytes exactly.
    #[test]
    fn scenario_points_round_trip_bit_exactly(
        axis_picks in (0usize..3, 0usize..5, 0usize..4),
        chips in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        stacks in prop_oneof![Just(2usize), Just(4), Just(8)],
        wireless_raw in (1u32..512, any::<u32>(), 0u32..1_000_000),
        stream_raw in (any::<u64>(), any::<u64>(), any::<u64>()),
        toggles in (any::<bool>(), any::<bool>()),
        seed in any::<u64>(),
        index in 0usize..1_000_000,
    ) {
        let (arch_idx, wireless_idx, stream_idx) = axis_picks;
        let (flits_raw, conc, rate_raw) = wireless_raw;
        let (frac_bits, stream_a, stream_b) = stream_raw;
        let (frfcfs, saturation) = toggles;
        let memory_fraction = gnarly_f64(frac_bits).abs().fract();
        let point = ScenarioPoint {
            index,
            label: format!("prop point #{index} seed=0x{seed:x}"),
            architecture: arch_from(arch_idx),
            chips,
            stacks,
            wireless: wireless_from(wireless_idx, flits_raw, conc),
            memory_fraction,
            address_stream: stream_from(stream_idx, stream_a, stream_b, conc),
            scheduler: if frfcfs { SchedulerPolicy::FrFcfs } else { SchedulerPolicy::Fcfs },
            injection: if saturation {
                InjectionProcess::Saturation
            } else {
                InjectionProcess::Bernoulli { rate: f64::from(rate_raw) / 1e7 }
            },
            seed,
        };

        let json = serde_json::to_string_pretty(&point).unwrap();
        let back: ScenarioPoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &point);
        // Value equality is not enough for the catalog: the float axes
        // must come back with the same bit pattern...
        prop_assert_eq!(
            back.memory_fraction.to_bits(),
            point.memory_fraction.to_bits()
        );
        // ...so the fingerprint — and therefore the catalog key — is
        // stable across a round trip, at either scale.
        for scale in [Scale::Quick, Scale::Paper] {
            prop_assert_eq!(
                catalog::fingerprint(&back, scale, 0.7),
                catalog::fingerprint(&point, scale, 0.7)
            );
        }
        // And re-serializing yields byte-identical JSON.
        prop_assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    }

    /// Random [`RunOutcome`]s — with the optional latency/energy fields
    /// populated or absent and the memory-stats table populated or
    /// empty — round-trip through JSON to byte-identical documents.
    #[test]
    fn run_outcomes_round_trip_bit_exactly(
        cores in 1usize..4096,
        counters in (any::<u64>(), any::<u64>(), any::<u64>()),
        float_bits in (any::<u64>(), any::<u64>(), any::<u64>()),
        presence in (any::<bool>(), any::<bool>(), any::<bool>()),
        fast_forwarded in any::<u64>(),
        shape in (0usize..15, 1usize..5),
    ) {
        let (window_cycles, window_packets, total_packets) = counters;
        let (bw_bits, energy_bits, stat_seed) = float_bits;
        let (with_energy_stats, with_latency, with_memory) = presence;
        let (n_categories, stacks) = shape;
        let energy = EnergyBreakdown {
            entries: EnergyCategory::ALL
                .into_iter()
                .take(n_categories)
                .enumerate()
                .map(|(i, cat)| {
                    (cat, Energy::from_nj(gnarly_f64(energy_bits.rotate_left(i as u32)).abs()))
                })
                .collect(),
            total: Energy::from_nj(gnarly_f64(energy_bits).abs()),
        };
        let memory: Vec<MemoryStackStats> = if with_memory {
            (0..stacks)
                .map(|s| MemoryStackStats {
                    stack: s,
                    accesses: stat_seed.rotate_left(s as u32),
                    reads: stat_seed.rotate_left(1 + s as u32),
                    writes: stat_seed.rotate_left(2 + s as u32),
                    page_hits: stat_seed.rotate_left(3 + s as u32),
                    page_empties: stat_seed.rotate_left(4 + s as u32),
                    page_misses: stat_seed.rotate_left(5 + s as u32),
                    admit_stall_cycles: stat_seed.rotate_left(6 + s as u32),
                    max_queue_depth: (stat_seed % 1024) as usize,
                    avg_queue_depth: gnarly_f64(stat_seed.rotate_left(7)).abs(),
                    avg_bank_parallelism: gnarly_f64(stat_seed.rotate_left(8)).abs(),
                    busy_fraction: gnarly_f64(stat_seed.rotate_left(9)).abs().fract(),
                })
                .collect()
        } else {
            Vec::new()
        };
        let outcome = RunOutcome {
            label: format!("prop outcome cores={cores}"),
            workload: "property-generated".to_string(),
            cores,
            window_cycles,
            window_packets,
            total_packets,
            bandwidth_gbps_per_core: gnarly_f64(bw_bits).abs(),
            avg_packet_energy_nj: with_energy_stats
                .then(|| gnarly_f64(bw_bits.rotate_left(13)).abs()),
            avg_latency_cycles: with_latency
                .then(|| gnarly_f64(bw_bits.rotate_left(29)).abs()),
            max_latency_cycles: with_latency.then_some(stat_seed % 1_000_000),
            p50_latency_cycles: with_latency.then_some(stat_seed % 100_000),
            p99_latency_cycles: with_latency.then_some(stat_seed % 500_000),
            p999_latency_cycles: with_latency.then_some(stat_seed % 900_000),
            fast_forwarded_cycles: fast_forwarded,
            meter_ops: stat_seed.rotate_left(11),
            meter_charges: stat_seed.rotate_left(17),
            energy,
            memory,
            telemetry: None,
        };

        let json = serde_json::to_string_pretty(&outcome).unwrap();
        let back: RunOutcome = serde_json::from_str(&json).unwrap();
        // `RunOutcome`'s PartialEq covers every field, floats included.
        prop_assert_eq!(&back, &outcome);
        prop_assert_eq!(
            back.bandwidth_gbps_per_core.to_bits(),
            outcome.bandwidth_gbps_per_core.to_bits()
        );
        // Byte-identical re-serialization is what lets overlapping
        // catalog shards overwrite each other's entries benignly.
        prop_assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    }
}

// ---------------------------------------------------------------------------
// Full-engine snapshots (`wimnet::core::checkpoint`): the checkpoint
// store validates entries by recomputing the content hash from a
// *re-serialized parse*, so `bytes(parse(bytes(s))) == bytes(s)` is a
// correctness requirement, not a nicety — a snapshot that drifted
// through one round trip would quarantine itself on every lookup.
// ---------------------------------------------------------------------------

/// Replace every fractional number in a JSON document with a finite
/// full-mantissa float — the snapshot schema with worst-case payloads.
/// Integer-typed fields (cycle counters, queue contents) are left
/// alone; doctoring those would break nothing serde-wise but would
/// make the document lie about its own shape.
fn doctor_floats(value: &mut serde::Value, rng: &mut u64) {
    match value {
        serde::Value::Float(f) => {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *f = gnarly_f64(*rng);
        }
        serde::Value::Seq(items) => {
            for item in items {
                doctor_floats(item, rng);
            }
        }
        serde::Value::Map(entries) => {
            for (_, item) in entries {
                doctor_floats(item, rng);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Mid-run [`Snapshot`]s — taken at a random cycle of a random
    /// (architecture, seed, load, read-share) run — survive JSON
    /// byte-exactly, both as captured and after every float in the
    /// document is doctored to a gnarly full-mantissa value.
    #[test]
    fn snapshots_round_trip_bit_exactly(
        arch_idx in 0usize..3,
        seed in 0u64..1_000,
        load in 0.001f64..0.006,
        stop_frac in 0.1f64..0.9,
        reads in any::<bool>(),
        float_seed in any::<u64>(),
    ) {
        use wimnet::traffic::{InjectionProcess, UniformRandom, Workload};

        let mut cfg = SystemConfig::xcym(2, 2, arch_from(arch_idx)).quick_test_profile();
        cfg.seed = seed;
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let base = UniformRandom::new(
            cfg.multichip.total_cores(),
            cfg.multichip.num_stacks,
            if reads { 0.9 } else { 0.20 },
            InjectionProcess::Bernoulli { rate: load },
            cfg.packet_flits,
            cfg.seed,
        );
        let mut workload: Box<dyn Workload> = if reads {
            Box::new(base.with_memory_reads(1.0, 8))
        } else {
            Box::new(base)
        };
        let total = cfg.warmup_cycles + cfg.measure_cycles;
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let stop = (total as f64 * stop_frac) as u64;
        sys.run_until(workload.as_mut(), 0, stop).unwrap();

        // As captured: one round trip reproduces the exact bytes.
        let snap = sys.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&serde_json::to_string_pretty(&back).unwrap(), &json);

        // Doctored: every float in the document replaced with a finite
        // full-mantissa value.  The parsed snapshot must reach a
        // byte-stable serialization in one round.
        let mut value: serde::Value = serde_json::from_str(&json).unwrap();
        let mut rng = float_seed;
        doctor_floats(&mut value, &mut rng);
        let doctored: Snapshot =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        let first = serde_json::to_string_pretty(&doctored).unwrap();
        let reparsed: Snapshot = serde_json::from_str(&first).unwrap();
        prop_assert_eq!(serde_json::to_string_pretty(&reparsed).unwrap(), first);

        // A restored-from-JSON snapshot is as good as the original: it
        // lands the rebuilt system on the same cycle.
        let mut fresh = MultichipSystem::build(&cfg).unwrap();
        fresh.restore(&back).unwrap();
        prop_assert_eq!(fresh.network().now(), snap.cycle);
    }
}
