//! Serialisation round trips for the result and configuration types the
//! harness writes to disk.
//!
//! Floating-point fields are compared with a relative tolerance: the
//! JSON layer is not guaranteed bit-exact for every f64, and the
//! archives only need analysable precision.

use wimnet::core::{Experiment, RunOutcome, SystemConfig};
use wimnet::topology::Architecture;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= a.abs().max(b.abs()) * 1e-9 + 1e-15
}

#[test]
fn run_outcome_round_trips_through_json() {
    let cfg = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
    let outcome = Experiment::uniform_random(&cfg, 0.002).run().unwrap();
    let json = serde_json::to_string_pretty(&outcome).unwrap();
    let back: RunOutcome = serde_json::from_str(&json).unwrap();

    assert_eq!(back.label, outcome.label);
    assert_eq!(back.workload, outcome.workload);
    assert_eq!(back.cores, outcome.cores);
    assert_eq!(back.window_packets, outcome.window_packets);
    assert_eq!(back.total_packets, outcome.total_packets);
    assert_eq!(back.max_latency_cycles, outcome.max_latency_cycles);
    assert_eq!(back.p99_latency_cycles, outcome.p99_latency_cycles);
    assert!(close(
        back.bandwidth_gbps_per_core,
        outcome.bandwidth_gbps_per_core
    ));
    assert!(close(back.packet_energy_nj(), outcome.packet_energy_nj()));
    assert!(close(back.latency_cycles(), outcome.latency_cycles()));
    assert!(close(
        back.energy.total.joules(),
        outcome.energy.total.joules()
    ));
    assert_eq!(back.energy.entries.len(), outcome.energy.entries.len());

    // The JSON is self-describing enough to grep in result archives.
    assert!(json.contains("bandwidth_gbps_per_core"));
    assert!(json.contains("4C4M (Wireless)"));
}

#[test]
fn system_config_round_trips_through_json() {
    let cfg = SystemConfig::xcym(8, 4, Architecture::Interposer);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    // Routing policy is deliberately skipped (not serialisable), so the
    // round trip resets it to the default; everything else must match.
    assert_eq!(back.multichip, cfg.multichip);
    assert_eq!(back.packet_flits, cfg.packet_flits);
    assert_eq!(back.wireless, cfg.wireless);
    assert_eq!(back.warmup_cycles, cfg.warmup_cycles);
    assert_eq!(back.vcs, cfg.vcs);
    assert_eq!(back.buf_depth, cfg.buf_depth);
    assert!(close(
        back.energy.wire_pj_per_bit_per_mm,
        cfg.energy.wire_pj_per_bit_per_mm
    ));
    assert!(close(
        back.energy.switch_static_base.watts(),
        cfg.energy.switch_static_base.watts()
    ));
    // A config deserialised from an archive must still build and run.
    let outcome = Experiment::uniform_random(&back.quick_test_profile(), 0.001)
        .run()
        .unwrap();
    assert!(outcome.packets_delivered() > 0);
}

#[test]
fn figure_rows_serialize_for_the_harness() {
    use wimnet::core::experiments::{fig2, Scale};
    let rows = fig2(Scale::Quick).unwrap();
    let json = serde_json::to_string(&rows).unwrap();
    assert!(json.contains("Substrate"));
    let back: Vec<wimnet::core::experiments::Fig2Row> =
        serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), rows.len());
}
